package datagen

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGenerateCountsAndBounds(t *testing.T) {
	for _, kind := range []Kind{Streets, Rivers, Regions} {
		cfg := Config{Kind: kind, Count: 5000, Seed: 1}
		items := Generate(cfg)
		if len(items) != cfg.Count {
			t.Fatalf("%v: generated %d items, want %d", kind, len(items), cfg.Count)
		}
		world := geom.WorldRect()
		ids := make(map[int32]bool)
		for i, it := range items {
			if !it.Rect.Valid() {
				t.Fatalf("%v: invalid rect %v at %d", kind, it.Rect, i)
			}
			if !world.Contains(it.Rect) {
				t.Fatalf("%v: rect %v escapes the world", kind, it.Rect)
			}
			ids[it.Data] = true
		}
		if kind != Rivers && len(ids) != cfg.Count {
			t.Fatalf("%v: object identifiers are not unique (%d distinct)", kind, len(ids))
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := Generate(Config{Kind: Streets, Count: 1000, Seed: 7})
	b := Generate(Config{Kind: Streets, Count: 1000, Seed: 7})
	c := Generate(Config{Kind: Streets, Count: 1000, Seed: 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different item at %d", i)
		}
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical relations")
	}
}

func TestStreetsAreSmallAndClustered(t *testing.T) {
	items := Generate(Config{Kind: Streets, Count: 20000, Seed: 3})
	var maxSide, sumArea float64
	for _, it := range items {
		side := math.Max(it.Rect.Width(), it.Rect.Height())
		if side > maxSide {
			maxSide = side
		}
		sumArea += it.Rect.Area()
	}
	if maxSide > 0.01 {
		t.Errorf("street segment MBRs should be small, max side %g", maxSide)
	}
	// Clustered data: the densest 10% of a coarse grid should hold far more
	// than 10% of the segments.
	const grid = 20
	counts := make([]int, grid*grid)
	for _, it := range items {
		c := it.Rect.Center()
		gx := int(c.X * grid)
		gy := int(c.Y * grid)
		if gx >= grid {
			gx = grid - 1
		}
		if gy >= grid {
			gy = grid - 1
		}
		counts[gy*grid+gx]++
	}
	// Count how many cells hold 80% of the data.
	total := len(items)
	covered, cells := 0, 0
	for covered < total*8/10 {
		best, bestIdx := -1, -1
		for i, c := range counts {
			if c > best {
				best, bestIdx = c, i
			}
		}
		covered += best
		counts[bestIdx] = -1
		cells++
	}
	if cells > grid*grid/2 {
		t.Errorf("street data is not clustered: %d of %d cells needed for 80%% of objects", cells, grid*grid)
	}
}

func TestRegionsAreLargerThanStreets(t *testing.T) {
	streets := Generate(Config{Kind: Streets, Count: 5000, Seed: 5})
	regions := Generate(Config{Kind: Regions, Count: 5000, Seed: 5})
	var streetArea, regionArea float64
	for _, it := range streets {
		streetArea += it.Rect.Area()
	}
	for _, it := range regions {
		regionArea += it.Rect.Area()
	}
	if regionArea <= streetArea*10 {
		t.Errorf("region MBRs should be much larger: street area %g, region area %g", streetArea, regionArea)
	}
}

func TestRiversAreSpatiallyCorrelated(t *testing.T) {
	items := Generate(Config{Kind: Rivers, Count: 5000, Seed: 9})
	// Consecutive segments of the same polyline touch, so the distance
	// between consecutive rectangle centres should usually be tiny.
	close := 0
	for i := 1; i < len(items); i++ {
		if items[i-1].Rect.Center().Distance(items[i].Rect.Center()) < 0.01 {
			close++
		}
	}
	if float64(close)/float64(len(items)) < 0.9 {
		t.Errorf("river segments are not correlated: only %d of %d consecutive pairs are close", close, len(items))
	}
}

func TestJoinSelectivityOrdering(t *testing.T) {
	// Region-region joins must produce far more intersections per object than
	// street-river joins, mirroring the paper's Table 8 (86k results for
	// ~130k line objects vs 543k results for ~34k-67k region objects).
	count := 4000
	streets := Generate(Config{Kind: Streets, Count: count, Seed: 11})
	rivers := Generate(Config{Kind: Rivers, Count: count, Seed: 12})
	regionsR := Generate(Config{Kind: Regions, Count: count, Seed: 13})
	regionsS := Generate(Config{Kind: Regions, Count: count / 2, Seed: 14})

	countPairs := func(a, b []geom.Rect) int {
		n := 0
		for _, r := range a {
			for _, s := range b {
				if r.Intersects(s) {
					n++
				}
			}
		}
		return n
	}

	sr := make([]geom.Rect, len(streets))
	for i, it := range streets {
		sr[i] = it.Rect
	}
	rr := make([]geom.Rect, len(rivers))
	for i, it := range rivers {
		rr[i] = it.Rect
	}
	gr := make([]geom.Rect, len(regionsR))
	for i, it := range regionsR {
		gr[i] = it.Rect
	}
	gs := make([]geom.Rect, len(regionsS))
	for i, it := range regionsS {
		gs[i] = it.Rect
	}

	lineJoin := countPairs(sr, rr)
	regionJoin := countPairs(gr, gs)
	if regionJoin <= lineJoin {
		t.Errorf("region join selectivity (%d) should exceed line join selectivity (%d)", regionJoin, lineJoin)
	}
}

func TestPaperTestPairs(t *testing.T) {
	pairs := PaperTestPairs(1.0)
	if len(pairs) != 5 {
		t.Fatalf("expected 5 test pairs, got %d", len(pairs))
	}
	wantCounts := map[string][2]int{
		"A": {PaperStreetsCount, PaperRiversRailwaysCount},
		"B": {PaperStreetsCount, PaperStreets2Count},
		"C": {PaperLargeStreetsCount, PaperRiversRailwaysCount},
		"D": {PaperRiversRailwaysCount, PaperRiversRailwaysCount},
		"E": {PaperRegionRCount, PaperRegionSCount},
	}
	for _, p := range pairs {
		want, ok := wantCounts[p.Name]
		if !ok {
			t.Fatalf("unexpected test pair %q", p.Name)
		}
		if p.R.Count != want[0] || p.S.Count != want[1] {
			t.Errorf("pair %s counts = %d/%d, want %d/%d", p.Name, p.R.Count, p.S.Count, want[0], want[1])
		}
	}
	if !pairs[3].SelfJoin {
		t.Error("test D must be marked as a self join")
	}

	scaled := PaperTestPairs(0.01)
	if scaled[0].R.Count >= pairs[0].R.Count {
		t.Error("scaling must reduce cardinalities")
	}
	defaulted := PaperTestPairs(0)
	if defaulted[0].R.Count != pairs[0].R.Count {
		t.Error("scale 0 must default to the paper cardinalities")
	}
	tiny := PaperTestPairs(0.000001)
	if tiny[0].R.Count < 100 {
		t.Error("scaled cardinalities must keep a sensible minimum")
	}
}

func TestKindString(t *testing.T) {
	if Streets.String() == "" || Rivers.String() == "" || Regions.String() == "" || Kind(42).String() == "" {
		t.Error("Kind.String must not be empty")
	}
}

func TestConfigDefaultWorld(t *testing.T) {
	items := Generate(Config{Kind: Regions, Count: 100, Seed: 1})
	if len(items) != 100 {
		t.Fatalf("got %d items", len(items))
	}
	custom := Generate(Config{Kind: Streets, Count: 100, Seed: 1, World: geom.Rect{XL: 10, YL: 10, XU: 20, YU: 20}})
	for _, it := range custom {
		if it.Rect.XL < 10 || it.Rect.XU > 20 {
			t.Fatalf("item %v escapes custom world", it.Rect)
		}
	}
}
