package experiments

import "testing"

// TestCrashRecoveryHarness is the acceptance property of the durable pager:
// a power cut at every file operation of an insert/delete/join workload must
// recover to a committed, validated tree whose SJ1-SJ5 join results are
// bit-identical to the clean run's record.  The full run enumerates every
// operation (several hundred crash points); -short strides the enumeration
// down to a smoke test.
func TestCrashRecoveryHarness(t *testing.T) {
	cfg := RecoveryConfig{}
	minPoints := 200
	if testing.Short() {
		cfg = RecoveryConfig{Items: 300, SItems: 200, Rounds: 4, Stride: 3}
		minPoints = 20
	}
	report := RunRecoveryHarness(cfg)
	for _, f := range report.Failures {
		t.Errorf("%s", f)
	}
	if report.CrashPoints < minPoints {
		t.Errorf("only %d crash points enumerated, want at least %d (total ops %d)",
			report.CrashPoints, minPoints, report.TotalOps)
	}
	if report.Recovered != report.CrashPoints-len(report.Failures) {
		t.Errorf("recovered %d of %d crash points", report.Recovered, report.CrashPoints)
	}
	if report.Commits < 3 {
		t.Errorf("clean run committed only %d transactions", report.Commits)
	}
	if report.ReplayedTxns == 0 {
		t.Errorf("no crash point exercised WAL replay (replayed transactions = 0)")
	}
	if report.EmptyRecoveries == 0 {
		t.Errorf("no crash point hit the pre-first-commit window")
	}
	t.Logf("commits=%d ops=%d crash points=%d recovered=%d empty=%d replayed txns=%d",
		report.Commits, report.TotalOps, report.CrashPoints, report.Recovered,
		report.EmptyRecoveries, report.ReplayedTxns)
}
