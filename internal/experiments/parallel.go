package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/costmodel"
	"repro/internal/join"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Parallel join load balance (extension; the paper's future-work section).
// ---------------------------------------------------------------------------

// ParallelPageSize and ParallelBufferKB fix the configuration of the
// parallel-scaling experiment: the paper's recommended SJ4 at 4 KByte pages
// with a 128 KByte buffer, partitioned across the workers.
const (
	ParallelPageSize = storage.PageSize4K
	ParallelBufferKB = 128
)

// ParallelWorkerCounts are the worker counts swept by the experiment.
var ParallelWorkerCounts = []int{1, 2, 4, 8}

// ParallelRow summarises one ParallelJoin run: the total work, how evenly it
// spread across the workers and how much the partitioned buffer cost in
// extra I/O.  Skews are max/mean ratios over the per-worker snapshots
// (1.00 = perfectly balanced); the paper's cost measures are CPU comparisons
// and disk accesses, so those are the measures whose balance decides the
// parallel speedup.
type ParallelRow struct {
	Strategy     join.PartitionStrategy
	Workers      int
	Tasks        int
	Pairs        int
	DiskAccesses int64
	// DiskOverhead is the run's total disk accesses divided by the
	// sequential join's: the price of partitioning one shared buffer into
	// per-worker slices.  1.00 means the partitioning cost nothing.
	DiskOverhead float64
	// HitRate is the share of worker node accesses satisfied from a buffer,
	// the locality measure of the schedule.
	HitRate  float64
	TaskSkew float64 // max/mean sub-join tasks per worker
	CompSkew float64 // max/mean join comparisons per worker
	DiskSkew float64 // max/mean disk accesses per worker
	// TimeSkew is max/mean of the per-worker estimated execution times, the
	// balance measure the parallel critical path depends on: a worker can
	// trade I/O against CPU (the locality-driven schedules do), so neither
	// component skew alone decides whether the workers finish together.
	TimeSkew float64
	// Steals is the number of successful steal operations and StolenTasks the
	// number of tasks that changed owners (stealing strategy only; both 0 for
	// the static schedules).
	Steals      int
	StolenTasks int
	// EstSpeedup is the speedup in estimated execution time (the paper's
	// section-5 cost model) of the parallel run over the sequential SJ4 with
	// the same total buffer: sequential estimate divided by the parallel
	// critical path (planning cost plus the slowest worker's estimate).  This
	// is the measure a single-core benchmark machine cannot show in
	// wall-clock time.
	EstSpeedup float64
}

// TableParallel joins the main pair with ParallelJoin (SJ4) for each
// partition strategy (the three static schedules plus the work-stealing
// scheduler) and worker count, and reports per-worker load-balance skew,
// buffer locality, steal counts and the disk-access overhead over the
// sequential join, using the per-worker snapshots the parallel executor
// publishes.  The static rows are deterministic machine properties of the
// plan; the stealing rows depend on runtime scheduling and show how the
// rebalancing trades a little locality for balance.
func (s *Suite) TableParallel() []ParallelRow {
	r, t := s.mainPair(ParallelPageSize)
	seq := s.runJoin(r, t, join.SJ4, ParallelBufferKB, nil)
	seqEst := s.model.EstimateSnapshot(seq.Metrics, ParallelPageSize)
	var rows []ParallelRow
	for _, strategy := range join.PartitionStrategies {
		for _, w := range ParallelWorkerCounts {
			res, err := join.ParallelJoin(r, t, join.ParallelOptions{
				Options: join.Options{
					Method:        join.SJ4,
					BufferBytes:   ParallelBufferKB << 10,
					UsePathBuffer: s.cfg.UsePathBuffer,
					DiscardPairs:  true,
				},
				Workers: w,
				// The static schedules make the per-worker split
				// deterministic, so skew and estimated speedup are
				// reproducible properties of the plan rather than of
				// goroutine scheduling.
				Strategy: strategy,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: parallel join %v with %d workers: %v", strategy, w, err))
			}
			row := ParallelRow{
				Strategy:     strategy,
				Workers:      w,
				Pairs:        res.Count,
				DiskAccesses: res.Metrics.DiskAccesses(),
				HitRate:      res.WorkerBufferHitRate(),
				TaskSkew:     res.TaskSkew(),
				CompSkew:     res.ComparisonSkew(),
				DiskSkew:     res.DiskSkew(),
				TimeSkew:     res.TimeSkew(s.model, ParallelPageSize),
				StolenTasks:  res.StolenTasks,
			}
			for _, n := range res.WorkerSteals {
				row.Steals += n
			}
			for _, n := range res.WorkerTasks {
				row.Tasks += n
			}
			if seqDisk := seq.Metrics.DiskAccesses(); seqDisk > 0 {
				row.DiskOverhead = float64(res.Metrics.DiskAccesses()) / float64(seqDisk)
			}
			if par := ParallelEstimate(s.model, res, ParallelPageSize); par.TotalSeconds() > 0 {
				row.EstSpeedup = seqEst.TotalSeconds() / par.TotalSeconds()
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// MeanEstErrPct returns the mean over workers of |predicted - actual| /
// actual in per cent — predicted being the cost-model estimate of the
// worker's initial schedule (Result.WorkerEstSeconds) and actual the
// cost-model time of its measured counters.  It reports false when the
// result carries no predictions or no worker measured a positive cost.
// This is the estimator-fidelity measure shared by TableEstimator,
// TableUpdates and the update benchmark.
func MeanEstErrPct(model costmodel.Model, res *join.Result, pageSize int) (float64, bool) {
	var errSum float64
	var counted int
	for w, predicted := range res.WorkerEstSeconds {
		actual := model.EstimateSnapshot(res.WorkerMetrics[w], pageSize).TotalSeconds()
		if actual <= 0 {
			continue
		}
		errSum += 100 * math.Abs(predicted-actual) / actual
		counted++
	}
	if counted == 0 {
		return 0, false
	}
	return errSum / float64(counted), true
}

// ParallelEstimate converts one ParallelJoin result into an estimated
// parallel execution time under the paper's cost model: the planning cost
// plus the estimate of the slowest worker, which is the critical path of the
// partitioned execution.
func ParallelEstimate(model costmodel.Model, res *join.Result, pageSize int) costmodel.Estimate {
	var worst costmodel.Estimate
	for _, m := range res.WorkerMetrics {
		if est := model.EstimateSnapshot(m, pageSize); est.TotalSeconds() > worst.TotalSeconds() {
			worst = est
		}
	}
	planEst := model.EstimateSnapshot(res.PlanMetrics, pageSize)
	return costmodel.Estimate{
		IOSeconds:  planEst.IOSeconds + worst.IOSeconds,
		CPUSeconds: planEst.CPUSeconds + worst.CPUSeconds,
	}
}

// PrintTableParallel writes the parallel load-balance rows grouped by
// partition strategy.
func PrintTableParallel(w io.Writer, rows []ParallelRow) {
	writeHeader(w, "Parallel join (SJ4, 4 KByte pages, 128 KB buffer): partition strategies")
	fmt.Fprintf(w, "%-12s %-8s %6s %8s %12s %9s %8s %10s %10s %10s %10s %7s %11s\n",
		"strategy", "workers", "tasks", "pairs", "disk acc", "overhead", "hit rate",
		"task skew", "comp skew", "disk skew", "time skew", "steals", "est speedup")
	last := join.PartitionStrategy(-1)
	for _, row := range rows {
		if row.Strategy != last && last != join.PartitionStrategy(-1) {
			fmt.Fprintln(w)
		}
		last = row.Strategy
		fmt.Fprintf(w, "%-12s %-8d %6d %8d %12d %9.2f %8.2f %10.2f %10.2f %10.2f %10.2f %7d %11.2f\n",
			row.Strategy, row.Workers, row.Tasks, row.Pairs, row.DiskAccesses,
			row.DiskOverhead, row.HitRate, row.TaskSkew, row.CompSkew, row.DiskSkew,
			row.TimeSkew, row.Steals, row.EstSpeedup)
	}
	fmt.Fprintln(w, "(skew = max/mean over the workers, 1.00 is perfectly balanced; time skew ="+
		"\n skew of per-worker estimated execution times, the critical-path balance;"+
		"\n overhead = disk accesses over the sequential join's; steals = successful"+
		"\n steal operations of the work-stealing scheduler; est speedup = estimated"+
		"\n sequential time over the parallel critical path, section-5 cost model)")
}

// ---------------------------------------------------------------------------
// Task-estimator fidelity: catalog averages vs sampled statistics.
// ---------------------------------------------------------------------------

// EstimatorWorkers is the worker count of the estimator-fidelity experiment.
const EstimatorWorkers = 8

// EstimatorRow compares the planner's predicted per-worker loads against the
// measured ones for one strategy and one estimator, quantifying how much the
// sampled catalog statistics tighten the schedule cuts over the
// catalog-average subtree model.
type EstimatorRow struct {
	Strategy join.PartitionStrategy
	// Sampled is true for the reservoir-sampled statistics, false for the
	// catalog-average ablation.
	Sampled bool
	Workers int
	// MeanAbsErrPct is the mean over the workers of
	// |predicted - actual| / actual (in percent), where predicted is the
	// cost-model estimate of the worker's schedule and actual the cost-model
	// time of its measured counters.  It measures estimator fidelity at the
	// granularity the partitioner actually cuts at.
	MeanAbsErrPct float64
	// CompSkew, TimeSkew and EstSpeedup show what the fidelity buys: a
	// tighter estimator packs the static schedules more evenly.
	CompSkew   float64
	TimeSkew   float64
	HitRate    float64
	EstSpeedup float64
}

// TableEstimator runs the estimate-driven static strategies at
// EstimatorWorkers workers with both estimators and reports the est-vs-actual
// error alongside the resulting balance.  (The stealing strategy is excluded:
// its executed split is rebalanced at run time, so predicted initial loads
// and measured loads diverge by design.)
func (s *Suite) TableEstimator() []EstimatorRow {
	r, t := s.mainPair(ParallelPageSize)
	seq := s.runJoin(r, t, join.SJ4, ParallelBufferKB, nil)
	seqEst := s.model.EstimateSnapshot(seq.Metrics, ParallelPageSize)
	var rows []EstimatorRow
	for _, sampled := range []bool{false, true} {
		for _, strategy := range []join.PartitionStrategy{join.PartitionLPT, join.PartitionSpatial} {
			res, err := join.ParallelJoin(r, t, join.ParallelOptions{
				Options: join.Options{
					Method:        join.SJ4,
					BufferBytes:   ParallelBufferKB << 10,
					UsePathBuffer: s.cfg.UsePathBuffer,
					DiscardPairs:  true,
				},
				Workers:             EstimatorWorkers,
				Strategy:            strategy,
				DisableSampledStats: !sampled,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: estimator table %v sampled=%v: %v", strategy, sampled, err))
			}
			row := EstimatorRow{
				Strategy: strategy,
				Sampled:  sampled,
				Workers:  len(res.WorkerMetrics),
				CompSkew: res.ComparisonSkew(),
				TimeSkew: res.TimeSkew(s.model, ParallelPageSize),
				HitRate:  res.WorkerBufferHitRate(),
			}
			if err, ok := MeanEstErrPct(s.model, res, ParallelPageSize); ok {
				row.MeanAbsErrPct = err
			}
			if par := ParallelEstimate(s.model, res, ParallelPageSize); par.TotalSeconds() > 0 {
				row.EstSpeedup = seqEst.TotalSeconds() / par.TotalSeconds()
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// PrintTableEstimator writes the estimator-fidelity rows.
func PrintTableEstimator(w io.Writer, rows []EstimatorRow) {
	writeHeader(w, "Task estimator: catalog averages vs sampled statistics (SJ4, 8 workers)")
	fmt.Fprintf(w, "%-12s %-16s %12s %10s %10s %9s %11s\n",
		"strategy", "estimator", "est err %", "comp skew", "time skew", "hit rate", "est speedup")
	for _, row := range rows {
		estimator := "catalog-avg"
		if row.Sampled {
			estimator = "sampled"
		}
		fmt.Fprintf(w, "%-12s %-16s %12.1f %10.2f %10.2f %9.2f %11.2f\n",
			row.Strategy, estimator, row.MeanAbsErrPct, row.CompSkew, row.TimeSkew, row.HitRate, row.EstSpeedup)
	}
	fmt.Fprintln(w, "(est err = mean over workers of |predicted - measured| / measured, cost-model"+
		"\n seconds; the sampled statistics replace the fan-out^level catalog-average model"+
		"\n with per-level populations and leaf extents collected by reservoir sampling)")
}
