package experiments

import (
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/join"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Parallel join load balance (extension; the paper's future-work section).
// ---------------------------------------------------------------------------

// ParallelPageSize and ParallelBufferKB fix the configuration of the
// parallel-scaling experiment: the paper's recommended SJ4 at 4 KByte pages
// with a 128 KByte buffer, partitioned across the workers.
const (
	ParallelPageSize = storage.PageSize4K
	ParallelBufferKB = 128
)

// ParallelWorkerCounts are the worker counts swept by the experiment.
var ParallelWorkerCounts = []int{1, 2, 4, 8}

// ParallelRow summarises one ParallelJoin run: the total work and how evenly
// it spread across the workers.  Skews are max/mean ratios over the
// per-worker snapshots (1.00 = perfectly balanced); the paper's cost
// measures are CPU comparisons and disk accesses, so those are the measures
// whose balance decides the parallel speedup.
type ParallelRow struct {
	Workers      int
	Tasks        int
	Pairs        int
	DiskAccesses int64
	TaskSkew     float64 // max/mean sub-join tasks per worker
	CompSkew     float64 // max/mean join comparisons per worker
	PairSkew     float64 // max/mean result pairs per worker
	// EstSpeedup is the speedup in estimated execution time (the paper's
	// section-5 cost model) of the parallel run over the sequential SJ4 with
	// the same total buffer: sequential estimate divided by the parallel
	// critical path (planning cost plus the slowest worker's estimate).  This
	// is the measure a single-core benchmark machine cannot show in
	// wall-clock time.
	EstSpeedup float64
}

// skew returns max/mean of the values, or 0 when the mean is zero.
func skew(values []int64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, max int64
	for _, v := range values {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(values))
	return float64(max) / mean
}

// TableParallel joins the main pair with ParallelJoin (SJ4) for each worker
// count and reports the per-worker load-balance skew, using the per-worker
// snapshots the parallel executor publishes.
func (s *Suite) TableParallel() []ParallelRow {
	r, t := s.mainPair(ParallelPageSize)
	seq := s.runJoin(r, t, join.SJ4, ParallelBufferKB, nil)
	seqEst := s.model.EstimateSnapshot(seq.Metrics, ParallelPageSize)
	var rows []ParallelRow
	for _, w := range ParallelWorkerCounts {
		res, err := join.ParallelJoin(r, t, join.ParallelOptions{
			Options: join.Options{
				Method:        join.SJ4,
				BufferBytes:   ParallelBufferKB << 10,
				UsePathBuffer: s.cfg.UsePathBuffer,
				DiscardPairs:  true,
			},
			Workers: w,
			// The static schedule makes the per-worker split deterministic,
			// so skew and estimated speedup are reproducible machine
			// properties of the plan rather than of goroutine scheduling.
			StaticPartition: true,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: parallel join with %d workers: %v", w, err))
		}
		row := ParallelRow{Workers: w, Pairs: res.Count, DiskAccesses: res.Metrics.DiskAccesses()}
		tasks := make([]int64, len(res.WorkerTasks))
		for i, n := range res.WorkerTasks {
			row.Tasks += n
			tasks[i] = int64(n)
		}
		comps := make([]int64, len(res.WorkerMetrics))
		pairs := make([]int64, len(res.WorkerMetrics))
		for i, m := range res.WorkerMetrics {
			comps[i] = m.Comparisons
			pairs[i] = m.PairsReported
		}
		row.TaskSkew = skew(tasks)
		row.CompSkew = skew(comps)
		row.PairSkew = skew(pairs)
		if par := ParallelEstimate(s.model, res, ParallelPageSize); par.TotalSeconds() > 0 {
			row.EstSpeedup = seqEst.TotalSeconds() / par.TotalSeconds()
		}
		rows = append(rows, row)
	}
	return rows
}

// ParallelEstimate converts one ParallelJoin result into an estimated
// parallel execution time under the paper's cost model: the planning cost
// (counters not attributed to any worker) plus the estimate of the slowest
// worker, which is the critical path of the partitioned execution.
func ParallelEstimate(model costmodel.Model, res *join.Result, pageSize int) costmodel.Estimate {
	planning := res.Metrics
	var worst costmodel.Estimate
	for _, m := range res.WorkerMetrics {
		planning = planning.Sub(m)
		if est := model.EstimateSnapshot(m, pageSize); est.TotalSeconds() > worst.TotalSeconds() {
			worst = est
		}
	}
	planEst := model.EstimateSnapshot(planning, pageSize)
	return costmodel.Estimate{
		IOSeconds:  planEst.IOSeconds + worst.IOSeconds,
		CPUSeconds: planEst.CPUSeconds + worst.CPUSeconds,
	}
}

// PrintTableParallel writes the parallel load-balance rows.
func PrintTableParallel(w io.Writer, rows []ParallelRow) {
	writeHeader(w, "Parallel join (SJ4, 4 KByte pages, 128 KB buffer): per-worker load balance")
	fmt.Fprintf(w, "%-9s %8s %10s %14s %12s %12s %12s %12s\n",
		"workers", "tasks", "pairs", "disk accesses", "task skew", "comp skew", "pair skew", "est speedup")
	for _, row := range rows {
		fmt.Fprintf(w, "%-9d %8d %10d %14d %12.2f %12.2f %12.2f %12.2f\n",
			row.Workers, row.Tasks, row.Pairs, row.DiskAccesses,
			row.TaskSkew, row.CompSkew, row.PairSkew, row.EstSpeedup)
	}
	fmt.Fprintln(w, "(skew = max/mean over the workers, 1.00 is perfectly balanced; est speedup is"+
		"\n estimated sequential time over the parallel critical path, section-5 cost model)")
}
