package experiments

import (
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/join"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Parallel join load balance (extension; the paper's future-work section).
// ---------------------------------------------------------------------------

// ParallelPageSize and ParallelBufferKB fix the configuration of the
// parallel-scaling experiment: the paper's recommended SJ4 at 4 KByte pages
// with a 128 KByte buffer, partitioned across the workers.
const (
	ParallelPageSize = storage.PageSize4K
	ParallelBufferKB = 128
)

// ParallelWorkerCounts are the worker counts swept by the experiment.
var ParallelWorkerCounts = []int{1, 2, 4, 8}

// ParallelRow summarises one ParallelJoin run: the total work, how evenly it
// spread across the workers and how much the partitioned buffer cost in
// extra I/O.  Skews are max/mean ratios over the per-worker snapshots
// (1.00 = perfectly balanced); the paper's cost measures are CPU comparisons
// and disk accesses, so those are the measures whose balance decides the
// parallel speedup.
type ParallelRow struct {
	Strategy     join.PartitionStrategy
	Workers      int
	Tasks        int
	Pairs        int
	DiskAccesses int64
	// DiskOverhead is the run's total disk accesses divided by the
	// sequential join's: the price of partitioning one shared buffer into
	// per-worker slices.  1.00 means the partitioning cost nothing.
	DiskOverhead float64
	// HitRate is the share of worker node accesses satisfied from a buffer,
	// the locality measure of the schedule.
	HitRate  float64
	TaskSkew float64 // max/mean sub-join tasks per worker
	CompSkew float64 // max/mean join comparisons per worker
	DiskSkew float64 // max/mean disk accesses per worker
	// EstSpeedup is the speedup in estimated execution time (the paper's
	// section-5 cost model) of the parallel run over the sequential SJ4 with
	// the same total buffer: sequential estimate divided by the parallel
	// critical path (planning cost plus the slowest worker's estimate).  This
	// is the measure a single-core benchmark machine cannot show in
	// wall-clock time.
	EstSpeedup float64
}

// TableParallel joins the main pair with ParallelJoin (SJ4) for each static
// partition strategy and worker count, and reports per-worker load-balance
// skew, buffer locality and the disk-access overhead over the sequential
// join, using the per-worker snapshots the parallel executor publishes.
func (s *Suite) TableParallel() []ParallelRow {
	r, t := s.mainPair(ParallelPageSize)
	seq := s.runJoin(r, t, join.SJ4, ParallelBufferKB, nil)
	seqEst := s.model.EstimateSnapshot(seq.Metrics, ParallelPageSize)
	var rows []ParallelRow
	for _, strategy := range join.StaticPartitionStrategies {
		for _, w := range ParallelWorkerCounts {
			res, err := join.ParallelJoin(r, t, join.ParallelOptions{
				Options: join.Options{
					Method:        join.SJ4,
					BufferBytes:   ParallelBufferKB << 10,
					UsePathBuffer: s.cfg.UsePathBuffer,
					DiscardPairs:  true,
				},
				Workers: w,
				// The static schedules make the per-worker split
				// deterministic, so skew and estimated speedup are
				// reproducible properties of the plan rather than of
				// goroutine scheduling.
				Strategy: strategy,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: parallel join %v with %d workers: %v", strategy, w, err))
			}
			row := ParallelRow{
				Strategy:     strategy,
				Workers:      w,
				Pairs:        res.Count,
				DiskAccesses: res.Metrics.DiskAccesses(),
				HitRate:      res.WorkerBufferHitRate(),
				TaskSkew:     res.TaskSkew(),
				CompSkew:     res.ComparisonSkew(),
				DiskSkew:     res.DiskSkew(),
			}
			for _, n := range res.WorkerTasks {
				row.Tasks += n
			}
			if seqDisk := seq.Metrics.DiskAccesses(); seqDisk > 0 {
				row.DiskOverhead = float64(res.Metrics.DiskAccesses()) / float64(seqDisk)
			}
			if par := ParallelEstimate(s.model, res, ParallelPageSize); par.TotalSeconds() > 0 {
				row.EstSpeedup = seqEst.TotalSeconds() / par.TotalSeconds()
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// ParallelEstimate converts one ParallelJoin result into an estimated
// parallel execution time under the paper's cost model: the planning cost
// plus the estimate of the slowest worker, which is the critical path of the
// partitioned execution.
func ParallelEstimate(model costmodel.Model, res *join.Result, pageSize int) costmodel.Estimate {
	var worst costmodel.Estimate
	for _, m := range res.WorkerMetrics {
		if est := model.EstimateSnapshot(m, pageSize); est.TotalSeconds() > worst.TotalSeconds() {
			worst = est
		}
	}
	planEst := model.EstimateSnapshot(res.PlanMetrics, pageSize)
	return costmodel.Estimate{
		IOSeconds:  planEst.IOSeconds + worst.IOSeconds,
		CPUSeconds: planEst.CPUSeconds + worst.CPUSeconds,
	}
}

// PrintTableParallel writes the parallel load-balance rows grouped by
// partition strategy.
func PrintTableParallel(w io.Writer, rows []ParallelRow) {
	writeHeader(w, "Parallel join (SJ4, 4 KByte pages, 128 KB buffer): partition strategies")
	fmt.Fprintf(w, "%-12s %-8s %6s %8s %12s %9s %8s %10s %10s %10s %11s\n",
		"strategy", "workers", "tasks", "pairs", "disk acc", "overhead", "hit rate",
		"task skew", "comp skew", "disk skew", "est speedup")
	last := join.PartitionStrategy(-1)
	for _, row := range rows {
		if row.Strategy != last && last != join.PartitionStrategy(-1) {
			fmt.Fprintln(w)
		}
		last = row.Strategy
		fmt.Fprintf(w, "%-12s %-8d %6d %8d %12d %9.2f %8.2f %10.2f %10.2f %10.2f %11.2f\n",
			row.Strategy, row.Workers, row.Tasks, row.Pairs, row.DiskAccesses,
			row.DiskOverhead, row.HitRate, row.TaskSkew, row.CompSkew, row.DiskSkew, row.EstSpeedup)
	}
	fmt.Fprintln(w, "(skew = max/mean over the workers, 1.00 is perfectly balanced; overhead = disk"+
		"\n accesses over the sequential join's; est speedup = estimated sequential time"+
		"\n over the parallel critical path, section-5 cost model)")
}
