package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/join"
	"repro/internal/storage"
)

// tinySuite keeps the experiment tests fast: ~1% of the paper's
// cardinalities, two page sizes, three buffer sizes.
func tinySuite() *Suite {
	return NewSuite(Config{
		Scale:         0.01,
		PageSizes:     []int{storage.PageSize1K, storage.PageSize2K},
		BufferSizesKB: []int{0, 32, 512},
		UsePathBuffer: true,
	})
}

func TestConfigDefaults(t *testing.T) {
	s := NewSuite(Config{})
	cfg := s.Config()
	if cfg.Scale != DefaultScale {
		t.Errorf("Scale = %g", cfg.Scale)
	}
	if len(cfg.PageSizes) != 4 || len(cfg.BufferSizesKB) != len(DefaultBufferSizesKB) {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestTable1Shape(t *testing.T) {
	s := tinySuite()
	rows := s.Table1()
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	if rows[0].M != 51 || rows[1].M != 102 {
		t.Errorf("capacities = %d, %d; want 51, 102", rows[0].M, rows[1].M)
	}
	// Larger pages mean fewer pages and equal or lower height (paper Table 1).
	if rows[1].R.DataPages >= rows[0].R.DataPages {
		t.Errorf("data pages must shrink with page size: %d vs %d", rows[1].R.DataPages, rows[0].R.DataPages)
	}
	if rows[1].R.Height > rows[0].R.Height {
		t.Errorf("height must not grow with page size")
	}
	if rows[0].TotalPages != rows[0].R.TotalPages()+rows[0].S.TotalPages() {
		t.Errorf("TotalPages inconsistent")
	}
}

func TestTable2Shape(t *testing.T) {
	s := tinySuite()
	res := s.Table2()
	if len(res.Cells) != len(s.Config().PageSizes)*len(s.Config().BufferSizesKB) {
		t.Fatalf("unexpected cell count %d", len(res.Cells))
	}
	// Within one page size, more buffer never means more accesses.  (Accesses
	// may legitimately fall below |R|+|S|: the paper notes that the union of
	// directory rectangles need not cover the whole data space, so some pages
	// are never required.)
	for _, ps := range s.Config().PageSizes {
		var prev int64 = -1
		for _, bufKB := range s.Config().BufferSizesKB {
			for _, c := range res.Cells {
				if c.PageSize != ps || c.BufferKB != bufKB {
					continue
				}
				if prev >= 0 && c.DiskAccesses > prev {
					t.Errorf("page %d: accesses grew with buffer (%d -> %d)", ps, prev, c.DiskAccesses)
				}
				prev = c.DiskAccesses
				if c.DiskAccesses <= 0 {
					t.Errorf("page %d: no accesses recorded", ps)
				}
			}
		}
		if res.Comparisons[ps] <= 0 {
			t.Errorf("page %d: no comparisons recorded", ps)
		}
		if res.OptimalAccesses[ps] <= 0 {
			t.Errorf("page %d: optimum row missing", ps)
		}
	}
	// Comparisons grow superlinearly with the page size (paper Table 2).
	if res.Comparisons[storage.PageSize2K] <= res.Comparisons[storage.PageSize1K] {
		t.Errorf("comparisons should grow with page size: %d vs %d",
			res.Comparisons[storage.PageSize2K], res.Comparisons[storage.PageSize1K])
	}
}

func TestTable3And4Shape(t *testing.T) {
	s := tinySuite()
	t3 := s.Table3()
	for _, row := range t3 {
		if row.PerformanceGain <= 1 {
			t.Errorf("page %d: restriction gain %.2f should exceed 1", row.PageSize, row.PerformanceGain)
		}
		if row.SJ2Comparisons >= row.SJ1Comparisons {
			t.Errorf("page %d: SJ2 must use fewer comparisons", row.PageSize)
		}
	}
	t4 := s.Table4()
	for _, row := range t4 {
		if row.V2Join >= row.V1Join {
			t.Errorf("page %d: restriction should reduce the sweep's join comparisons (%d vs %d)",
				row.PageSize, row.V2Join, row.V1Join)
		}
		if row.V2RatioSJ1 <= 1 {
			t.Errorf("page %d: sorted+restricted join must beat SJ1 (ratio %.2f)", row.PageSize, row.V2RatioSJ1)
		}
		if row.V2RatioSJ2 <= 1 {
			t.Errorf("page %d: sorted join must beat the unsorted restricted join (ratio %.2f)", row.PageSize, row.V2RatioSJ2)
		}
		if row.V1Sort == 0 || row.V2Sort == 0 {
			t.Errorf("page %d: sorting comparisons missing", row.PageSize)
		}
	}
}

func TestTable5And6Shape(t *testing.T) {
	s := NewSuite(Config{
		Scale:         0.01,
		PageSizes:     []int{storage.PageSize1K, Table5PageSize},
		BufferSizesKB: []int{0, 32, 512},
		UsePathBuffer: true,
	})
	t5 := s.Table5()
	if len(t5) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(t5))
	}
	var sumSJ3, sumSJ4 int64
	for i, row := range t5 {
		sumSJ3 += row.SJ3
		sumSJ4 += row.SJ4
		if i > 0 && row.SJ4 > t5[i-1].SJ4 {
			t.Errorf("SJ4 accesses grew with the buffer")
		}
	}
	// Pinning (SJ4) does not lose against plain sweep order (SJ3) overall;
	// individual rows may differ by a few pages at this scale.
	if sumSJ4 > sumSJ3 {
		t.Errorf("SJ4 total accesses (%d) exceed SJ3 total accesses (%d)", sumSJ4, sumSJ3)
	}
	t6 := s.Table6()
	// Individual cells may fluctuate by a page or two at this tiny scale (the
	// paper's own Table 6 has a 154% cell), so the shape check is on the
	// aggregate: over the whole grid SJ4 must not need more accesses than SJ1.
	var totalSJ1, totalSJ4 int64
	for _, c := range t6.Cells {
		totalSJ1 += c.SJ1
		totalSJ4 += c.SJ4
		if c.PercentOfSJ1 <= 0 || c.PercentOfSJ1 > 200 {
			t.Errorf("page %d buffer %d: percentage %.1f out of range", c.PageSize, c.BufferKB, c.PercentOfSJ1)
		}
		if t6.Optimum[c.PageSize] <= 0 {
			t.Errorf("missing optimum for page %d", c.PageSize)
		}
	}
	if totalSJ4 > totalSJ1 {
		t.Errorf("SJ4 total accesses (%d) exceed SJ1 total accesses (%d)", totalSJ4, totalSJ1)
	}
}

func TestTable7Shape(t *testing.T) {
	// Scale 0.02 keeps the run fast while still making the large street tree
	// one level taller than the river tree at the 2 KByte page size, which is
	// the situation Table 7 studies.
	s := NewSuite(Config{
		Scale:         0.02,
		PageSizes:     []int{Table7PageSize},
		BufferSizesKB: []int{0, 128},
		UsePathBuffer: true,
	})
	if hBig, hSmall := s.tree("largeStreets", s.largeStreets(), Table7PageSize).Height(),
		s.tree("rivers", s.rivers(), Table7PageSize).Height(); hBig <= hSmall {
		t.Fatalf("test setup: expected different heights, got %d and %d", hBig, hSmall)
	}
	rows := s.Table7()
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	// Paper Table 7: policy (b) clearly beats (a) for small buffers and the
	// policies converge for large buffers.
	small := rows[0]
	if small.PolicyB > small.PolicyA {
		t.Errorf("zero buffer: policy (b) (%d) must not need more accesses than (a) (%d)", small.PolicyB, small.PolicyA)
	}
	if float64(small.PolicyA) < 1.2*float64(small.PolicyB) {
		t.Errorf("zero buffer: expected a clear gap between (a)=%d and (b)=%d", small.PolicyA, small.PolicyB)
	}
}

func TestTable8AndFigure10Shape(t *testing.T) {
	s := NewSuite(Config{
		Scale:         0.01,
		PageSizes:     []int{storage.PageSize1K},
		BufferSizesKB: []int{0, 128},
		UsePathBuffer: true,
	})
	rows := s.Table8()
	if len(rows) != 5 {
		t.Fatalf("expected 5 test pairs, got %d", len(rows))
	}
	byName := map[string]Table8Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Intersections <= 0 {
			t.Errorf("test %s produced no intersections", r.Name)
		}
	}
	// Region data (E) produces far more intersections per object than the
	// line-data tests, and the self join (D) more than the street/river join
	// (A) — the qualitative ordering of the paper's Table 8.
	perObject := func(r Table8Row) float64 { return float64(r.Intersections) / float64(r.RCount+r.SCount) }
	if perObject(byName["E"]) <= perObject(byName["A"]) {
		t.Errorf("region join selectivity should exceed the line join selectivity")
	}
	if byName["D"].Intersections <= byName["A"].Intersections {
		t.Errorf("self join (D) should produce more intersections than test (A)")
	}

	points := s.Figure10()
	if len(points) != 5 {
		t.Fatalf("expected 5 figure-10 points, got %d", len(points))
	}
	for _, p := range points {
		if p.Factor < 1 {
			t.Errorf("test %s: SJ4 should not be slower than SJ1 (factor %.2f)", p.Test, p.Factor)
		}
	}
}

func TestFiguresShape(t *testing.T) {
	s := tinySuite()
	f2 := s.Figure2()
	f8 := s.Figure8()
	if len(f2) != len(f8) || len(f2) == 0 {
		t.Fatalf("figure point counts: %d vs %d", len(f2), len(f8))
	}
	var total2, total8 float64
	for i := range f2 {
		total2 += f2[i].Estimate.TotalSeconds()
		total8 += f8[i].Estimate.TotalSeconds()
		if f2[i].Estimate.TotalSeconds() <= 0 {
			t.Errorf("zero estimate in figure 2")
		}
	}
	if total8 >= total2 {
		t.Errorf("SJ4 (%.1fs) must be faster overall than SJ1 (%.1fs)", total8, total2)
	}
	for _, p := range s.Figure9() {
		if p.OverSJ1 < 1 {
			t.Errorf("figure 9: SJ4 slower than SJ1 (%.2f) for page %d buffer %d", p.OverSJ1, p.PageSize, p.BufferKB)
		}
		if p.OverSJ2 <= 0 {
			t.Errorf("figure 9: non-positive factor vs SJ2")
		}
	}
}

func TestRunAllPrintsEveryTableAndFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run is slow")
	}
	s := NewSuite(Config{
		Scale:         0.01,
		PageSizes:     []int{storage.PageSize1K, storage.PageSize2K, storage.PageSize4K},
		BufferSizesKB: []int{0, 128},
		UsePathBuffer: true,
	})
	var buf bytes.Buffer
	s.RunAll(&buf)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 2", "Table 3", "Table 4",
		"Table 5", "Table 6", "Table 7", "Figure 8", "Figure 9",
		"Table 8", "Figure 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output is missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("RunAll output suspiciously short (%d bytes)", len(out))
	}
}

func TestBulkLoadSuiteAgrees(t *testing.T) {
	// The bulk-loaded configuration must produce the same join cardinalities
	// as the dynamically built one (the trees differ, the result set cannot).
	dynamic := NewSuite(Config{Scale: 0.01, PageSizes: []int{storage.PageSize1K}, BufferSizesKB: []int{128}})
	packed := NewSuite(Config{Scale: 0.01, PageSizes: []int{storage.PageSize1K}, BufferSizesKB: []int{128}, BulkLoad: true})
	a := dynamic.Table8()
	b := packed.Table8()
	for i := range a {
		if a[i].Intersections != b[i].Intersections {
			t.Errorf("test %s: dynamic found %d pairs, bulk-loaded %d",
				a[i].Name, a[i].Intersections, b[i].Intersections)
		}
	}
}

func TestSortedKeysHelper(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := sortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("sortedKeys = %v", keys)
	}
}

func TestTableParallelShape(t *testing.T) {
	s := tinySuite()
	rows := s.TableParallel()
	want := len(join.PartitionStrategies) * len(ParallelWorkerCounts)
	if len(rows) != want {
		t.Fatalf("TableParallel returned %d rows, want %d", len(rows), want)
	}
	i := 0
	for _, strategy := range join.PartitionStrategies {
		for _, workers := range ParallelWorkerCounts {
			row := rows[i]
			i++
			if row.Strategy != strategy || row.Workers != workers {
				t.Fatalf("row %d is %v/%d, want %v/%d", i-1, row.Strategy, row.Workers, strategy, workers)
			}
			if row.Pairs != rows[0].Pairs {
				t.Errorf("%v/%d: %d pairs, want %d (result set must not depend on the schedule)",
					strategy, workers, row.Pairs, rows[0].Pairs)
			}
			if row.Tasks <= 0 || row.DiskAccesses <= 0 || row.EstSpeedup <= 0 || row.DiskOverhead <= 0 {
				t.Errorf("%v/%d: empty counters in %+v", strategy, workers, row)
			}
			if workers > 1 && (row.TaskSkew < 1 || row.CompSkew < 1 || row.DiskSkew < 1) {
				t.Errorf("%v/%d: skews below 1 in %+v", strategy, workers, row)
			}
		}
	}

	var buf bytes.Buffer
	PrintTableParallel(&buf, rows)
	out := buf.String()
	for _, want := range []string{"round-robin", "lpt", "spatial", "stealing", "steals", "est speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintTableParallel output is missing %q", want)
		}
	}
}

func TestTableUpdatesShape(t *testing.T) {
	s := tinySuite()
	rows := s.TableUpdates()
	strategies := len(join.PartitionStrategies) + 1 // + dynamic
	want := 2 * UpdateRounds * strategies
	if len(rows) != want {
		t.Fatalf("TableUpdates returned %d rows, want %d", len(rows), want)
	}
	i := 0
	for _, maintained := range []bool{true, false} {
		for round := 1; round <= UpdateRounds; round++ {
			var pairs int
			for j := 0; j < strategies; j++ {
				row := rows[i]
				i++
				if row.Maintained != maintained || row.Round != round {
					t.Fatalf("row %d is %v/round %d, want %v/round %d",
						i-1, row.Maintained, row.Round, maintained, round)
				}
				if j == 0 {
					pairs = row.Pairs
				} else if row.Pairs != pairs {
					t.Errorf("%v round %d %v: %d pairs, want %d (result must not depend on the schedule)",
						maintained, round, row.Strategy, row.Pairs, pairs)
				}
				if row.Tasks <= 0 || row.TimeSkew < 1 {
					t.Errorf("degenerate row %+v", row)
				}
				if row.HintHitRate <= 0 || row.HintHitRate > 1 {
					t.Errorf("%v round %d: hint hit rate %v outside (0,1]", maintained, round, row.HintHitRate)
				}
				// The acceptance pin: maintained statistics never walk the
				// tree, whatever the mutation sequence.
				if maintained && (row.CatalogWalks != 0 || row.WalkedPages != 0) {
					t.Errorf("maintained round %d %v performed %d recollection walks (%d pages)",
						round, row.Strategy, row.CatalogWalks, row.WalkedPages)
				}
			}
		}
	}
	// The ablation must actually show the stall it exists to show: at least
	// one recollect-mode row pays a full-tree walk per tree.
	var ablatedWalks int
	for _, row := range rows {
		if !row.Maintained {
			ablatedWalks += row.CatalogWalks
		}
	}
	if ablatedWalks < 2*UpdateRounds {
		t.Errorf("ablation block shows only %d recollection walks over %d rounds", ablatedWalks, UpdateRounds)
	}

	var buf bytes.Buffer
	PrintTableUpdates(&buf, rows)
	out := buf.String()
	for _, want := range []string{"maintained", "recollect", "hint rate", "walked pages", "stealing"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintTableUpdates output is missing %q", want)
		}
	}
}

func TestTableEstimatorShape(t *testing.T) {
	s := tinySuite()
	rows := s.TableEstimator()
	if len(rows) != 4 {
		t.Fatalf("TableEstimator returned %d rows, want 4", len(rows))
	}
	for _, row := range rows {
		if row.Workers <= 0 || row.Workers > EstimatorWorkers {
			t.Errorf("%v sampled=%v: %d workers outside (0,%d]", row.Strategy, row.Sampled, row.Workers, EstimatorWorkers)
		}
		if row.MeanAbsErrPct < 0 || row.CompSkew < 1 || row.EstSpeedup <= 0 {
			t.Errorf("%v sampled=%v: degenerate row %+v", row.Strategy, row.Sampled, row)
		}
		if rate := row.HitRate; rate != rate || rate < 0 || rate > 1 {
			t.Errorf("%v sampled=%v: hit rate %v outside [0,1]", row.Strategy, row.Sampled, rate)
		}
	}
	var buf bytes.Buffer
	PrintTableEstimator(&buf, rows)
	out := buf.String()
	for _, want := range []string{"catalog-avg", "sampled", "est err"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintTableEstimator output is missing %q", want)
		}
	}
}
