// Package experiments reproduces every table and figure of the paper's
// evaluation (sections 4 and 5) on the synthetic data sets of
// internal/datagen.  Each experiment returns structured rows and can print
// itself in the layout of the paper, so the shape of the results (who wins,
// by what factor, where the crossovers lie) can be compared directly against
// the published numbers; EXPERIMENTS.md records that comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// DefaultScale is the fraction of the paper's data-set cardinalities used
// when no scale is configured.  0.05 keeps a full suite run in the order of
// seconds; cmd/experiments -scale 1.0 reproduces the full sizes.
const DefaultScale = 0.05

// DefaultBufferSizesKB are the LRU buffer sizes (in KByte) swept by the
// paper's Tables 2, 5, 6 and 7.
var DefaultBufferSizesKB = []int{0, 8, 32, 128, 512}

// Config controls the experiment suite.
type Config struct {
	// Scale is the fraction of the paper's cardinalities to generate
	// (default DefaultScale).
	Scale float64
	// PageSizes are the page sizes to sweep (default storage.PageSizes).
	PageSizes []int
	// BufferSizesKB are the LRU buffer sizes in KByte (default
	// DefaultBufferSizesKB).
	BufferSizesKB []int
	// BulkLoad builds the R*-trees with STR packing instead of dynamic
	// insertion.  The paper builds its trees by insertion; bulk loading is
	// offered for quick runs of very large configurations.
	BulkLoad bool
	// UsePathBuffer enables the per-tree path buffer (as the paper's
	// implementation does).
	UsePathBuffer bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = DefaultScale
	}
	if len(c.PageSizes) == 0 {
		c.PageSizes = append([]int(nil), storage.PageSizes...)
	}
	if len(c.BufferSizesKB) == 0 {
		c.BufferSizesKB = append([]int(nil), DefaultBufferSizesKB...)
	}
	return c
}

// Suite runs the experiments, caching generated data sets and built trees so
// that several tables can share them.
type Suite struct {
	cfg   Config
	items map[string][]rtree.Item
	trees map[treeKey]*rtree.Tree
	model costmodel.Model
}

type treeKey struct {
	dataset  string
	pageSize int
}

// NewSuite returns a suite for the given configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:   cfg.withDefaults(),
		items: make(map[string][]rtree.Item),
		trees: make(map[treeKey]*rtree.Tree),
		model: costmodel.Default(),
	}
}

// Config returns the effective configuration (defaults applied).
func (s *Suite) Config() Config { return s.cfg }

// scaledCount applies the configured scale to a paper cardinality.
func (s *Suite) scaledCount(paperCount int) int {
	n := int(float64(paperCount) * s.cfg.Scale)
	if n < 100 {
		n = 100
	}
	return n
}

// dataset returns (and caches) the items of one named relation.
func (s *Suite) dataset(name string, cfg datagen.Config) []rtree.Item {
	if items, ok := s.items[name]; ok {
		return items
	}
	items := datagen.Generate(cfg)
	s.items[name] = items
	return items
}

// Named datasets corresponding to the paper's relations.
func (s *Suite) streets() []rtree.Item {
	return s.dataset("streets", datagen.Config{
		Kind: datagen.Streets, Count: s.scaledCount(datagen.PaperStreetsCount), Seed: 101,
	})
}

func (s *Suite) streets2() []rtree.Item {
	return s.dataset("streets2", datagen.Config{
		Kind: datagen.Streets, Count: s.scaledCount(datagen.PaperStreets2Count), Seed: 303,
	})
}

func (s *Suite) rivers() []rtree.Item {
	return s.dataset("rivers", datagen.Config{
		Kind: datagen.Rivers, Count: s.scaledCount(datagen.PaperRiversRailwaysCount), Seed: 202,
	})
}

func (s *Suite) largeStreets() []rtree.Item {
	return s.dataset("largeStreets", datagen.Config{
		Kind: datagen.Streets, Count: s.scaledCount(datagen.PaperLargeStreetsCount), Seed: 404,
	})
}

func (s *Suite) regionsR() []rtree.Item {
	return s.dataset("regionsR", datagen.Config{
		Kind: datagen.Regions, Count: s.scaledCount(datagen.PaperRegionRCount), Seed: 505,
	})
}

func (s *Suite) regionsS() []rtree.Item {
	return s.dataset("regionsS", datagen.Config{
		Kind: datagen.Regions, Count: s.scaledCount(datagen.PaperRegionSCount), Seed: 606,
	})
}

// tree returns (and caches) the R*-tree over the named dataset for one page
// size.
func (s *Suite) tree(name string, items []rtree.Item, pageSize int) *rtree.Tree {
	key := treeKey{dataset: name, pageSize: pageSize}
	if t, ok := s.trees[key]; ok {
		return t
	}
	t, err := rtree.Build(rtree.Options{PageSize: pageSize}, items, s.cfg.BulkLoad)
	if err != nil {
		panic(fmt.Sprintf("experiments: building tree %s/%d: %v", name, pageSize, err))
	}
	s.trees[key] = t
	return t
}

// mainPair returns the trees of the paper's main experiment pair (test A:
// streets R joined with rivers & railways S) for one page size.
func (s *Suite) mainPair(pageSize int) (*rtree.Tree, *rtree.Tree) {
	return s.tree("streets", s.streets(), pageSize), s.tree("rivers", s.rivers(), pageSize)
}

// runJoin executes one join with the suite's buffer settings and returns its
// result.
func (s *Suite) runJoin(r, t *rtree.Tree, method join.Method, bufferKB int, extra func(*join.Options)) *join.Result {
	opts := join.Options{
		Method:        method,
		BufferBytes:   bufferKB << 10,
		UsePathBuffer: s.cfg.UsePathBuffer,
		DiscardPairs:  true,
	}
	if extra != nil {
		extra(&opts)
	}
	res, err := join.Join(r, t, opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: join %v failed: %v", method, err))
	}
	return res
}

// writeHeader prints a table/figure caption.
func writeHeader(w io.Writer, caption string) {
	fmt.Fprintf(w, "\n%s\n", caption)
	for range caption {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}

// sortedKeys returns the sorted keys of an int-keyed map (helper for stable
// printing).
func sortedKeys[M ~map[int]V, V any](m M) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
