package experiments

import (
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/join"
)

// ---------------------------------------------------------------------------
// Figure 2: estimated execution time of SpatialJoin1 (CPU vs I/O).
// ---------------------------------------------------------------------------

// FigurePoint is one bar of Figures 2 and 8: the estimated execution time of
// a join for one page size and buffer size, split into I/O and CPU time.
type FigurePoint struct {
	PageSize int
	BufferKB int
	Estimate costmodel.Estimate
}

// Figure2 estimates the execution time of SpatialJoin1 over the page-size and
// buffer-size grid, using the paper's cost constants.
func (s *Suite) Figure2() []FigurePoint {
	return s.figureFor(join.SJ1)
}

// Figure8 is the same estimation for SpatialJoin4, the paper's recommended
// algorithm.
func (s *Suite) Figure8() []FigurePoint {
	return s.figureFor(join.SJ4)
}

func (s *Suite) figureFor(method join.Method) []FigurePoint {
	var points []FigurePoint
	for _, ps := range s.cfg.PageSizes {
		r, t := s.mainPair(ps)
		for _, bufKB := range s.cfg.BufferSizesKB {
			jr := s.runJoin(r, t, method, bufKB, nil)
			points = append(points, FigurePoint{
				PageSize: ps,
				BufferKB: bufKB,
				Estimate: s.model.Estimate(jr.Metrics.DiskAccesses(), ps, jr.Metrics.TotalComparisons()),
			})
		}
	}
	return points
}

// PrintFigure prints the estimated total time per configuration and the
// CPU/I-O split, which is the information carried by the paper's bar charts.
func PrintFigure(w io.Writer, s *Suite, caption string, points []FigurePoint) {
	writeHeader(w, caption)
	fmt.Fprintf(w, "%-12s %-12s %12s %12s %12s %10s\n",
		"page size", "buffer", "total (s)", "I/O (s)", "CPU (s)", "bound")
	for _, p := range points {
		bound := "CPU"
		if p.Estimate.IOBound() {
			bound = "I/O"
		}
		fmt.Fprintf(w, "%-12s %-12s %12.1f %12.1f %12.1f %10s\n",
			formatKB(p.PageSize), fmt.Sprintf("%d KB", p.BufferKB),
			p.Estimate.TotalSeconds(), p.Estimate.IOSeconds, p.Estimate.CPUSeconds, bound)
	}
}

// ---------------------------------------------------------------------------
// Figure 9: improvement factor of SJ4 over SJ1 and SJ2.
// ---------------------------------------------------------------------------

// Figure9Point is one bar of Figure 9: the estimated-total-time improvement
// factor of SJ4 over a reference algorithm for one configuration.
type Figure9Point struct {
	PageSize int
	BufferKB int
	OverSJ1  float64
	OverSJ2  float64
}

// Figure9 computes the improvement factor of SJ4 over SJ1 and over SJ2 in
// estimated total execution time.
func (s *Suite) Figure9() []Figure9Point {
	var points []Figure9Point
	for _, ps := range s.cfg.PageSizes {
		r, t := s.mainPair(ps)
		for _, bufKB := range s.cfg.BufferSizesKB {
			est := func(m join.Method) costmodel.Estimate {
				jr := s.runJoin(r, t, m, bufKB, nil)
				return s.model.Estimate(jr.Metrics.DiskAccesses(), ps, jr.Metrics.TotalComparisons())
			}
			e1, e2, e4 := est(join.SJ1), est(join.SJ2), est(join.SJ4)
			points = append(points, Figure9Point{
				PageSize: ps,
				BufferKB: bufKB,
				OverSJ1:  costmodel.Speedup(e1, e4),
				OverSJ2:  costmodel.Speedup(e2, e4),
			})
		}
	}
	return points
}

// PrintFigure9 prints the improvement factors of Figure 9.
func PrintFigure9(w io.Writer, points []Figure9Point) {
	writeHeader(w, "Figure 9: Improvement factor of SJ4 in total join time")
	fmt.Fprintf(w, "%-12s %-12s %14s %14s\n", "page size", "buffer", "vs SJ1", "vs SJ2")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %-12s %14.2f %14.2f\n",
			formatKB(p.PageSize), fmt.Sprintf("%d KB", p.BufferKB), p.OverSJ1, p.OverSJ2)
	}
}

// ---------------------------------------------------------------------------
// Figure 10: improvement factor of SJ4 over SJ1 for the tests (A)-(E).
// ---------------------------------------------------------------------------

// Figure10Point is one bar of Figure 10: the improvement factor of SJ4 over
// SJ1 for one test pair and page size at a 128 KByte buffer.
type Figure10Point struct {
	Test     string
	PageSize int
	Factor   float64
}

// Figure10BufferKB is the buffer size the paper uses for Figure 10.
const Figure10BufferKB = 128

// Figure10 computes the improvement factors for the five test pairs.
func (s *Suite) Figure10() []Figure10Point {
	var points []Figure10Point
	for _, p := range s.testPairs() {
		for _, ps := range s.cfg.PageSizes {
			r := s.tree(p.rName, p.r, ps)
			t := s.tree(p.sName, p.s, ps)
			est := func(m join.Method) costmodel.Estimate {
				jr := s.runJoin(r, t, m, Figure10BufferKB, nil)
				return s.model.Estimate(jr.Metrics.DiskAccesses(), ps, jr.Metrics.TotalComparisons())
			}
			points = append(points, Figure10Point{
				Test:     p.name,
				PageSize: ps,
				Factor:   costmodel.Speedup(est(join.SJ1), est(join.SJ4)),
			})
		}
	}
	return points
}

// PrintFigure10 prints the improvement factors of Figure 10.
func PrintFigure10(w io.Writer, points []Figure10Point) {
	writeHeader(w, "Figure 10: Improvement factor of SJ4 over SJ1 for tests (A)-(E), 128 KB buffer")
	fmt.Fprintf(w, "%-6s %-12s %14s\n", "test", "page size", "factor")
	for _, p := range points {
		fmt.Fprintf(w, "%-6s %-12s %14.2f\n", "("+p.Test+")", formatKB(p.PageSize), p.Factor)
	}
}

// ---------------------------------------------------------------------------
// Whole-suite driver.
// ---------------------------------------------------------------------------

// RunAll executes every table and figure of the paper in order and writes the
// formatted output to w.
func (s *Suite) RunAll(w io.Writer) {
	fmt.Fprintf(w, "Spatial join experiments (scale %.3f of the paper's cardinalities)\n", s.cfg.Scale)
	PrintTable1(w, s.Table1())
	t2 := s.Table2()
	PrintTable2(w, s, t2)
	PrintFigure(w, s, "Figure 2: Estimated execution time of SpatialJoin1", s.Figure2())
	PrintTable3(w, s.Table3())
	PrintTable4(w, s.Table4())
	PrintTable5(w, s.Table5())
	PrintTable6(w, s, s.Table6())
	PrintTable7(w, s.Table7())
	PrintFigure(w, s, "Figure 8: Estimated execution time of SpatialJoin4", s.Figure8())
	PrintFigure9(w, s.Figure9())
	PrintTable8(w, s.Table8())
	PrintFigure10(w, s.Figure10())
	PrintTableParallel(w, s.TableParallel())
}
