package experiments

import (
	"testing"

	"repro/internal/storage"
)

// TestTableDiskIOMeasuredEqualsCounted pins the core claim of the measured
// I/O mode: with a cold LRU, the simulation's counted disk reads and the
// pager's physical frame reads are the same number — the cost model counts
// exactly the pages that leave the disk.
func TestTableDiskIOMeasuredEqualsCounted(t *testing.T) {
	s := NewSuite(Config{Scale: 0.02})
	rows := s.TableDiskIO(storage.NewMemVFS(), "")
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	pairs := rows[0].Pairs
	for _, row := range rows {
		if row.MeasuredReads != row.CountedReads {
			t.Errorf("%v buffer %dKB: measured %d reads, counted %d",
				row.Method, row.BufferKB, row.MeasuredReads, row.CountedReads)
		}
		if row.Pairs != pairs {
			t.Errorf("%v buffer %dKB: %d pairs, other methods found %d",
				row.Method, row.BufferKB, row.Pairs, pairs)
		}
		if row.CountedReads == 0 {
			t.Errorf("%v buffer %dKB: no disk reads counted", row.Method, row.BufferKB)
		}
		wantBytes := row.MeasuredReads * int64(DiskPageSize+8)
		if row.MeasuredBytes != wantBytes {
			t.Errorf("%v buffer %dKB: %d bytes read, want %d (frame = page + 8-byte header)",
				row.Method, row.BufferKB, row.MeasuredBytes, wantBytes)
		}
	}
}

// TestTableDiskUpdatesIncremental pins the page economy of the durable
// update rounds: commits write only changed pages, keep the untouched
// majority clean, recycle freed pages, and the verification join still reads
// physically what the simulation counts.
func TestTableDiskUpdatesIncremental(t *testing.T) {
	s := NewSuite(Config{Scale: 0.02})
	rows := s.TableDiskUpdates(storage.NewMemVFS(), "")
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	reused := int64(0)
	for _, row := range rows {
		if row.MeasuredReads != row.CountedReads {
			t.Errorf("round %d: measured %d reads, counted %d",
				row.Round, row.MeasuredReads, row.CountedReads)
		}
		if row.PagesClean == 0 {
			t.Errorf("round %d: incremental commit kept no page clean", row.Round)
		}
		if row.PagesWritten == 0 || row.WALBytes == 0 {
			t.Errorf("round %d: commit wrote nothing (pages %d, WAL bytes %d)",
				row.Round, row.PagesWritten, row.WALBytes)
		}
		reused += row.PagesReused
	}
	if reused == 0 {
		t.Error("no round reused a freed page: the free list never fed Allocate")
	}
}
