package experiments

import (
	"fmt"
	"io"

	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Table 1: properties of the R*-trees R and S per page size.
// ---------------------------------------------------------------------------

// Table1Row is one row of Table 1.
type Table1Row struct {
	PageSize   int
	M          int
	R, S       rtree.Stats
	TotalPages int
}

// Table1 builds the R*-trees of the main pair for every configured page size
// and reports their structural properties.
func (s *Suite) Table1() []Table1Row {
	var rows []Table1Row
	for _, ps := range s.cfg.PageSizes {
		r, t := s.mainPair(ps)
		rs, ts := r.Stats(), t.Stats()
		rows = append(rows, Table1Row{
			PageSize:   ps,
			M:          storage.CapacityForPage(ps),
			R:          rs,
			S:          ts,
			TotalPages: rs.TotalPages() + ts.TotalPages(),
		})
	}
	return rows
}

// PrintTable1 writes the rows in the layout of the paper's Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	writeHeader(w, "Table 1: Properties of R*-trees R and S")
	fmt.Fprintf(w, "%-10s %5s | %6s %7s %8s | %6s %7s %8s | %8s\n",
		"page size", "M", "height", "|R|dir", "|R|data", "height", "|S|dir", "|S|data", "|R|+|S|")
	for _, row := range rows {
		fmt.Fprintf(w, "%-10s %5d | %6d %7d %8d | %6d %7d %8d | %8d\n",
			formatKB(row.PageSize), row.M,
			row.R.Height, row.R.DirPages, row.R.DataPages,
			row.S.Height, row.S.DirPages, row.S.DataPages,
			row.TotalPages)
	}
}

// ---------------------------------------------------------------------------
// Table 2: disk accesses and comparisons of SpatialJoin1.
// ---------------------------------------------------------------------------

// Table2Cell is the number of disk accesses of SJ1 for one page size and one
// buffer size.
type Table2Cell struct {
	PageSize     int
	BufferKB     int
	DiskAccesses int64
}

// Table2Result captures the paper's Table 2.
type Table2Result struct {
	Cells []Table2Cell
	// OptimalAccesses is the |R|+|S| row ("opt. buffer size").
	OptimalAccesses map[int]int64
	// Comparisons is the (buffer-independent) number of join comparisons per
	// page size.
	Comparisons map[int]int64
}

// Table2 runs SpatialJoin1 for every page size and buffer size.
func (s *Suite) Table2() Table2Result {
	res := Table2Result{
		OptimalAccesses: make(map[int]int64),
		Comparisons:     make(map[int]int64),
	}
	for _, ps := range s.cfg.PageSizes {
		r, t := s.mainPair(ps)
		res.OptimalAccesses[ps] = int64(r.Stats().TotalPages() + t.Stats().TotalPages())
		for _, bufKB := range s.cfg.BufferSizesKB {
			jr := s.runJoin(r, t, join.SJ1, bufKB, nil)
			res.Cells = append(res.Cells, Table2Cell{
				PageSize:     ps,
				BufferKB:     bufKB,
				DiskAccesses: jr.Metrics.DiskAccesses(),
			})
			res.Comparisons[ps] = jr.Metrics.Comparisons
		}
	}
	return res
}

// PrintTable2 writes the result in the layout of the paper's Table 2.
func PrintTable2(w io.Writer, s *Suite, res Table2Result) {
	writeHeader(w, "Table 2: Number of disk accesses and comparisons of SpatialJoin1")
	printAccessMatrix(w, s, func(ps, bufKB int) int64 {
		for _, c := range res.Cells {
			if c.PageSize == ps && c.BufferKB == bufKB {
				return c.DiskAccesses
			}
		}
		return 0
	})
	fmt.Fprintf(w, "%-16s", "opt. buffer")
	for _, ps := range s.cfg.PageSizes {
		fmt.Fprintf(w, " %12d", res.OptimalAccesses[ps])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s", "# comparisons")
	for _, ps := range s.cfg.PageSizes {
		fmt.Fprintf(w, " %12d", res.Comparisons[ps])
	}
	fmt.Fprintln(w)
}

// printAccessMatrix prints a buffer-size x page-size matrix of values.
func printAccessMatrix(w io.Writer, s *Suite, value func(pageSize, bufferKB int) int64) {
	fmt.Fprintf(w, "%-16s", "buffer \\ page")
	for _, ps := range s.cfg.PageSizes {
		fmt.Fprintf(w, " %12s", formatKB(ps))
	}
	fmt.Fprintln(w)
	for _, bufKB := range s.cfg.BufferSizesKB {
		fmt.Fprintf(w, "%-16s", fmt.Sprintf("%d KB", bufKB))
		for _, ps := range s.cfg.PageSizes {
			fmt.Fprintf(w, " %12d", value(ps, bufKB))
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Table 3: comparisons with and without restricting the search space.
// ---------------------------------------------------------------------------

// Table3Row compares SJ1 and SJ2 for one page size.
type Table3Row struct {
	PageSize        int
	SJ1Comparisons  int64
	SJ2Comparisons  int64
	PerformanceGain float64
}

// Table3 runs SJ1 and SJ2 per page size and reports the comparison counts.
func (s *Suite) Table3() []Table3Row {
	var rows []Table3Row
	for _, ps := range s.cfg.PageSizes {
		r, t := s.mainPair(ps)
		r1 := s.runJoin(r, t, join.SJ1, 0, nil)
		r2 := s.runJoin(r, t, join.SJ2, 0, nil)
		gain := 0.0
		if r2.Metrics.Comparisons > 0 {
			gain = float64(r1.Metrics.Comparisons) / float64(r2.Metrics.Comparisons)
		}
		rows = append(rows, Table3Row{
			PageSize:        ps,
			SJ1Comparisons:  r1.Metrics.Comparisons,
			SJ2Comparisons:  r2.Metrics.Comparisons,
			PerformanceGain: gain,
		})
	}
	return rows
}

// PrintTable3 writes the rows in the layout of the paper's Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	writeHeader(w, "Table 3: Comparisons with/without restricting the search space")
	fmt.Fprintf(w, "%-18s", "")
	for _, row := range rows {
		fmt.Fprintf(w, " %12s", formatKB(row.PageSize))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "SpatialJoin1")
	for _, row := range rows {
		fmt.Fprintf(w, " %12d", row.SJ1Comparisons)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "SpatialJoin2")
	for _, row := range rows {
		fmt.Fprintf(w, " %12d", row.SJ2Comparisons)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "performance gain")
	for _, row := range rows {
		fmt.Fprintf(w, " %12.2f", row.PerformanceGain)
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Table 4: effect of spatial sorting (sorted intersection test).
// ---------------------------------------------------------------------------

// Table4Row captures one page size of the paper's Table 4.
type Table4Row struct {
	PageSize int
	// Version (I): sorting + plane sweep without search-space restriction.
	V1Join int64
	V1Sort int64
	// Version (II): sorting + plane sweep with search-space restriction.
	V2Join int64
	V2Sort int64
	// Ratios relative to SJ1 and SJ2 (join comparisons only, assuming sorted
	// nodes, as in the paper's "join-ratio" rows).
	V1RatioSJ1 float64
	V2RatioSJ1 float64
	V2RatioSJ2 float64
	// RepeatFactor is how many times a page can be sorted on average before
	// the sorted join (version II) loses against the unsorted restricted join
	// (SJ2).
	RepeatFactor float64
}

// Table4 measures the effect of sorting with and without search-space
// restriction.
func (s *Suite) Table4() []Table4Row {
	var rows []Table4Row
	for _, ps := range s.cfg.PageSizes {
		r, t := s.mainPair(ps)
		sj1 := s.runJoin(r, t, join.SJ1, 0, nil)
		sj2 := s.runJoin(r, t, join.SJ2, 0, nil)
		v1 := s.runJoin(r, t, join.SJ3, 0, func(o *join.Options) { o.DisableRestriction = true })
		v2 := s.runJoin(r, t, join.SJ4, 0, nil)

		row := Table4Row{
			PageSize: ps,
			V1Join:   v1.Metrics.Comparisons,
			V1Sort:   v1.Metrics.SortComparisons,
			V2Join:   v2.Metrics.Comparisons,
			V2Sort:   v2.Metrics.SortComparisons,
		}
		if row.V1Join > 0 {
			row.V1RatioSJ1 = float64(sj1.Metrics.Comparisons) / float64(row.V1Join)
		}
		if row.V2Join > 0 {
			row.V2RatioSJ1 = float64(sj1.Metrics.Comparisons) / float64(row.V2Join)
			row.V2RatioSJ2 = float64(sj2.Metrics.Comparisons) / float64(row.V2Join)
		}
		// One full sorting pass over all pages of both trees:
		if v2.Metrics.NodeSorts > 0 {
			perSort := float64(v2.Metrics.SortComparisons) / float64(v2.Metrics.NodeSorts)
			pages := float64(r.Stats().TotalPages() + t.Stats().TotalPages())
			saved := float64(sj2.Metrics.Comparisons - v2.Metrics.Comparisons)
			if perSort > 0 && pages > 0 && saved > 0 {
				row.RepeatFactor = saved / (perSort * pages)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTable4 writes the rows in the layout of the paper's Table 4.
func PrintTable4(w io.Writer, rows []Table4Row) {
	writeHeader(w, "Table 4: Comparisons of spatial joins with/without sorting")
	fmt.Fprintf(w, "%-34s", "")
	for _, row := range rows {
		fmt.Fprintf(w, " %12s", formatKB(row.PageSize))
	}
	fmt.Fprintln(w)
	printInt64Row := func(label string, get func(Table4Row) int64) {
		fmt.Fprintf(w, "%-34s", label)
		for _, row := range rows {
			fmt.Fprintf(w, " %12d", get(row))
		}
		fmt.Fprintln(w)
	}
	printFloatRow := func(label string, get func(Table4Row) float64) {
		fmt.Fprintf(w, "%-34s", label)
		for _, row := range rows {
			fmt.Fprintf(w, " %12.2f", get(row))
		}
		fmt.Fprintln(w)
	}
	printInt64Row("version (I)  join", func(r Table4Row) int64 { return r.V1Join })
	printInt64Row("version (I)  sorting", func(r Table4Row) int64 { return r.V1Sort })
	printFloatRow("version (I)  join-ratio to SJ1", func(r Table4Row) float64 { return r.V1RatioSJ1 })
	printInt64Row("version (II) join", func(r Table4Row) int64 { return r.V2Join })
	printInt64Row("version (II) sorting", func(r Table4Row) int64 { return r.V2Sort })
	printFloatRow("version (II) join-ratio to SJ1", func(r Table4Row) float64 { return r.V2RatioSJ1 })
	printFloatRow("version (II) join-ratio to SJ2", func(r Table4Row) float64 { return r.V2RatioSJ2 })
	printFloatRow("repeat-factor to SJ2", func(r Table4Row) float64 { return r.RepeatFactor })
}

// ---------------------------------------------------------------------------
// Table 5: disk accesses of SJ3, SJ4 and SJ5 (read-schedule comparison).
// ---------------------------------------------------------------------------

// Table5Row compares the read schedules for one buffer size at a fixed page
// size (4 KByte in the paper).
type Table5Row struct {
	BufferKB      int
	SJ3, SJ4, SJ5 int64
}

// Table5PageSize is the page size the paper uses for Table 5.
const Table5PageSize = storage.PageSize4K

// Table5 compares the local plane-sweep order (SJ3), plane-sweep order with
// pinning (SJ4) and local z-order (SJ5).
func (s *Suite) Table5() []Table5Row {
	r, t := s.mainPair(Table5PageSize)
	var rows []Table5Row
	for _, bufKB := range s.cfg.BufferSizesKB {
		rows = append(rows, Table5Row{
			BufferKB: bufKB,
			SJ3:      s.runJoin(r, t, join.SJ3, bufKB, nil).Metrics.DiskAccesses(),
			SJ4:      s.runJoin(r, t, join.SJ4, bufKB, nil).Metrics.DiskAccesses(),
			SJ5:      s.runJoin(r, t, join.SJ5, bufKB, nil).Metrics.DiskAccesses(),
		})
	}
	return rows
}

// PrintTable5 writes the rows in the layout of the paper's Table 5.
func PrintTable5(w io.Writer, rows []Table5Row) {
	writeHeader(w, "Table 5: Number of disk accesses of SJ3, SJ4 and SJ5 (4 KByte pages)")
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "buffer size", "SJ3", "SJ4", "SJ5")
	for _, row := range rows {
		fmt.Fprintf(w, "%-14s %12d %12d %12d\n", fmt.Sprintf("%d KB", row.BufferKB), row.SJ3, row.SJ4, row.SJ5)
	}
}

// ---------------------------------------------------------------------------
// Table 6: I/O performance of SJ4 versus SJ1.
// ---------------------------------------------------------------------------

// Table6Cell holds SJ4's accesses and the percentage relative to SJ1 for one
// page size and buffer size.
type Table6Cell struct {
	PageSize     int
	BufferKB     int
	SJ4          int64
	SJ1          int64
	PercentOfSJ1 float64
}

// Table6Result captures the paper's Table 6.
type Table6Result struct {
	Cells   []Table6Cell
	Optimum map[int]int64
}

// Table6 measures SJ4's disk accesses relative to SJ1 over the full page-size
// and buffer-size grid.
func (s *Suite) Table6() Table6Result {
	res := Table6Result{Optimum: make(map[int]int64)}
	for _, ps := range s.cfg.PageSizes {
		r, t := s.mainPair(ps)
		res.Optimum[ps] = int64(r.Stats().TotalPages() + t.Stats().TotalPages())
		for _, bufKB := range s.cfg.BufferSizesKB {
			sj1 := s.runJoin(r, t, join.SJ1, bufKB, nil).Metrics.DiskAccesses()
			sj4 := s.runJoin(r, t, join.SJ4, bufKB, nil).Metrics.DiskAccesses()
			cell := Table6Cell{PageSize: ps, BufferKB: bufKB, SJ4: sj4, SJ1: sj1}
			if sj1 > 0 {
				cell.PercentOfSJ1 = 100 * float64(sj4) / float64(sj1)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res
}

// PrintTable6 writes the result in the layout of the paper's Table 6.
func PrintTable6(w io.Writer, s *Suite, res Table6Result) {
	writeHeader(w, "Table 6: I/O-performance of SJ4 (disk accesses and % of SJ1)")
	fmt.Fprintf(w, "%-14s", "buffer \\ page")
	for _, ps := range s.cfg.PageSizes {
		fmt.Fprintf(w, " %12s  %6s", formatKB(ps), "(%)")
	}
	fmt.Fprintln(w)
	for _, bufKB := range s.cfg.BufferSizesKB {
		fmt.Fprintf(w, "%-14s", fmt.Sprintf("%d KB", bufKB))
		for _, ps := range s.cfg.PageSizes {
			for _, c := range res.Cells {
				if c.PageSize == ps && c.BufferKB == bufKB {
					fmt.Fprintf(w, " %12d  %6.1f", c.SJ4, c.PercentOfSJ1)
				}
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "optimum")
	for _, ps := range s.cfg.PageSizes {
		fmt.Fprintf(w, " %12d  %6s", res.Optimum[ps], "")
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Table 7: joining R*-trees of different heights (policies a, b, c).
// ---------------------------------------------------------------------------

// Table7Row compares the three height policies for one buffer size.
type Table7Row struct {
	// PageSize is the page size actually used (see Table7 for how it is
	// chosen).
	PageSize                  int
	BufferKB                  int
	PolicyA, PolicyB, PolicyC int64
}

// Table7PageSize is the page size the paper uses for Table 7 (2 KByte, which
// at the paper's full cardinalities makes the large street tree one level
// taller than the river tree).
const Table7PageSize = storage.PageSize2K

// Table7 joins the large street relation with the river relation using the
// three policies of section 4.4.  The experiment is only meaningful when the
// two trees have different heights; at reduced data-set scales the paper's
// 2 KByte page size may yield equal heights, in which case the smallest
// configured page size that produces a height difference is used instead.
func (s *Suite) Table7() []Table7Row {
	pageSize := Table7PageSize
	r := s.tree("largeStreets", s.largeStreets(), pageSize)
	t := s.tree("rivers", s.rivers(), pageSize)
	if r.Height() == t.Height() {
		for _, ps := range s.cfg.PageSizes {
			cr := s.tree("largeStreets", s.largeStreets(), ps)
			ct := s.tree("rivers", s.rivers(), ps)
			if cr.Height() != ct.Height() {
				pageSize, r, t = ps, cr, ct
				break
			}
		}
	}
	var rows []Table7Row
	for _, bufKB := range s.cfg.BufferSizesKB {
		row := Table7Row{PageSize: pageSize, BufferKB: bufKB}
		row.PolicyA = s.runJoin(r, t, join.SJ4, bufKB, func(o *join.Options) { o.HeightPolicy = join.PolicyWindowPerPair }).Metrics.DiskAccesses()
		row.PolicyB = s.runJoin(r, t, join.SJ4, bufKB, func(o *join.Options) { o.HeightPolicy = join.PolicyBatchedWindows }).Metrics.DiskAccesses()
		row.PolicyC = s.runJoin(r, t, join.SJ4, bufKB, func(o *join.Options) { o.HeightPolicy = join.PolicySweepOrder }).Metrics.DiskAccesses()
		rows = append(rows, row)
	}
	return rows
}

// PrintTable7 writes the rows in the layout of the paper's Table 7.
func PrintTable7(w io.Writer, rows []Table7Row) {
	caption := "Table 7: I/O-performance for R*-trees of different height"
	if len(rows) > 0 {
		caption = fmt.Sprintf("%s (%s pages)", caption, formatKB(rows[0].PageSize))
	}
	writeHeader(w, caption)
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "buffer size", "(a)", "(b)", "(c)")
	for _, row := range rows {
		fmt.Fprintf(w, "%-14s %12d %12d %12d\n", fmt.Sprintf("%d KB", row.BufferKB), row.PolicyA, row.PolicyB, row.PolicyC)
	}
}

// ---------------------------------------------------------------------------
// Table 8: characteristics of the test data sets (A)-(E).
// ---------------------------------------------------------------------------

// Table8Row describes one of the paper's five join tests.
type Table8Row struct {
	Name          string
	RCount        int
	RSubject      string
	SCount        int
	SSubject      string
	Intersections int
}

// Table8PageSize is the page size used to count the result cardinality.
const Table8PageSize = storage.PageSize2K

// testPair bundles the named datasets of one of the tests (A)-(E).
type testPair struct {
	name               string
	rName, sName       string
	rSubject, sSubject string
	r, s               []rtree.Item
}

// testPairs returns the five test configurations at the suite's scale.
func (s *Suite) testPairs() []testPair {
	return []testPair{
		{"A", "streets", "rivers", "streets", "rivers & railways", s.streets(), s.rivers()},
		{"B", "streets", "streets2", "streets", "streets", s.streets(), s.streets2()},
		{"C", "largeStreets", "rivers", "streets (large)", "rivers & railways", s.largeStreets(), s.rivers()},
		{"D", "rivers", "rivers", "rivers & railways", "rivers & railways", s.rivers(), s.rivers()},
		{"E", "regionsR", "regionsS", "region data", "region data", s.regionsR(), s.regionsS()},
	}
}

// Table8 reports the cardinalities and result sizes of the five test pairs.
func (s *Suite) Table8() []Table8Row {
	var rows []Table8Row
	for _, p := range s.testPairs() {
		r := s.tree(p.rName, p.r, Table8PageSize)
		t := s.tree(p.sName, p.s, Table8PageSize)
		jr := s.runJoin(r, t, join.SJ4, 128, nil)
		rows = append(rows, Table8Row{
			Name:          p.name,
			RCount:        len(p.r),
			RSubject:      p.rSubject,
			SCount:        len(p.s),
			SSubject:      p.sSubject,
			Intersections: jr.Count,
		})
	}
	return rows
}

// PrintTable8 writes the rows in the layout of the paper's Table 8.
func PrintTable8(w io.Writer, rows []Table8Row) {
	writeHeader(w, "Table 8: Characteristics of the test data sets (A)-(E)")
	fmt.Fprintf(w, "%-4s %10s %-20s %10s %-20s %14s\n", "", "||R||dat", "subject R", "||S||dat", "subject S", "intersections")
	for _, row := range rows {
		fmt.Fprintf(w, "%-4s %10d %-20s %10d %-20s %14d\n",
			"("+row.Name+")", row.RCount, row.RSubject, row.SCount, row.SSubject, row.Intersections)
	}
}

// formatKB renders a page size in the paper's "1 KByte" style.
func formatKB(bytes int) string {
	return fmt.Sprintf("%d KByte", bytes>>10)
}
