package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"repro/internal/join"
	"repro/internal/router"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/zorder"
)

// ---------------------------------------------------------------------------
// Sharded-deployment benchmark (scaling extension): N shard servers — real
// HTTP daemons over pager-backed stores, each owning one Hilbert key range —
// behind the query router, driven through churn+query waves.  Three
// contracts are checked and measured:
//
//   - parity: the router's merged join is bit-identical to the brute-force
//     oracle over the same item set, for every shard count and every join
//     method SJ1..SJ5, before and after churn;
//   - scaling: wall clock of the fan-out join and its critical path (the
//     slowest shard) across 1/2/4 shards — on a single-core host the
//     critical path is the honest multi-machine scaling indicator, the
//     total wall mostly measures serialization;
//   - failure typing: a shard with a dead disk or a shedding admission gate
//     must surface as a typed *PartialError (with 503s honoured and
//     retried), never as a silently truncated pair set, and parity must
//     hold again after heal+reopen.
// ---------------------------------------------------------------------------

// ShardBenchConfig parameterises the benchmark.  The zero value runs the
// default workload at Scale 1.0.
type ShardBenchConfig struct {
	// Scale multiplies the dataset cardinalities (default 1.0: 10000 R
	// rectangles joined against 7500 S rectangles).
	Scale float64
	// ShardCounts are the deployment sizes to measure (default 1, 2, 4).
	ShardCounts []int
	// ChurnRounds and ChurnPerRound drive the churn waves between the
	// parity checks (defaults 3 and 200 delete+insert pairs).
	ChurnRounds, ChurnPerRound int
	// Repeats is the number of timed joins per deployment; the median is
	// reported (default 3).
	Repeats int
	// PageSize is the page size of every shard's tree and pager (default 4K).
	PageSize int
	// Seed seeds the workload (default 17).
	Seed int64
}

func (c ShardBenchConfig) withDefaults() ShardBenchConfig {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4}
	}
	if c.ChurnRounds <= 0 {
		c.ChurnRounds = 3
	}
	if c.ChurnPerRound <= 0 {
		c.ChurnPerRound = 200
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.PageSize <= 0 {
		c.PageSize = storage.PageSize4K
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	return c
}

// ShardScalingResult is the measurement of one deployment size.
type ShardScalingResult struct {
	Shards int
	// Pairs is the merged pair count (identical across shard counts).
	Pairs int
	// ParityOK: every method SJ1..SJ5 matched the oracle, before and after
	// churn.
	ParityOK bool
	// Rounds is the number of churn rounds committed through the router.
	Rounds int
	// JoinWall is the median wall clock of the merged fan-out join.
	JoinWall time.Duration
	// CriticalPath is the median of the slowest single shard's wall per
	// join — the lower bound a multi-machine deployment converges to.
	CriticalPath time.Duration
	// Speedup and CriticalSpeedup are against the 1-shard deployment.
	Speedup, CriticalSpeedup float64
}

// ShardBenchReport is the outcome of the whole benchmark.
type ShardBenchReport struct {
	Config  ShardBenchConfig
	Results []ShardScalingResult

	// FaultTyped / FaultHealed: a dead-disk shard produced a typed
	// *PartialError naming it (with zero pairs returned), and parity held
	// again after heal+reopen.
	FaultTyped, FaultHealed bool
	// ShedTyped: a permanently shedding shard (503 + Retry-After) was
	// retried the configured number of times and then surfaced as a typed
	// 503 StatusError inside the *PartialError.
	ShedTyped bool
	// ShedAttempts is how many attempts the router made against it.
	ShedAttempts int

	Failures []string
}

// Ok reports whether the benchmark observed no violation.
func (r *ShardBenchReport) Ok() bool { return len(r.Failures) == 0 }

func (r *ShardBenchReport) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// shardProc is one in-process shard daemon: the same server core and HTTP
// surface cmd/spatialjoind mounts, over a FaultFS so the benchmark can
// kill and heal its disk.
type shardProc struct {
	name  string
	fs    *storage.FaultFS
	srv   *server.Server
	httpd *httptest.Server
	close func()
}

func launchShard(name string, keys zorder.KeyRange, sTree *rtree.Tree, pageSize int) (*shardProc, error) {
	treeOpts := rtree.Options{PageSize: pageSize}
	pagerOpts := storage.PagerOptions{ReadRetries: 1, Sleep: func(time.Duration) {}}
	fs := storage.NewFaultFS(storage.NewMemVFS(), storage.FaultScript{})
	pager, err := storage.OpenPager(fs, "shard.db", pageSize, pagerOpts)
	if err != nil {
		return nil, err
	}
	tree, err := rtree.New(treeOpts)
	if err != nil {
		return nil, errors.Join(err, pager.Close())
	}
	store, err := rtree.NewTreeStore(tree, pager)
	if err != nil {
		return nil, errors.Join(err, pager.Close())
	}
	cur := pager
	srv, err := server.New(server.Config{
		Store:      store,
		S:          sTree,
		CacheBytes: 64 * pageSize,
		Sleep:      func(context.Context, time.Duration) {},
		Reopen: func() (*rtree.TreeStore, error) {
			// The benchmark heals the FaultFS before reopening; the old
			// pager carries the injected fault as its latched error.
			//repolint:ignore latchederr reopen discards the pager the injected fault broke
			cur.Close()
			p, err := storage.OpenPager(fs, "shard.db", pageSize, pagerOpts)
			if err != nil {
				return nil, err
			}
			ts, err := rtree.OpenTreeStore(p, treeOpts)
			if err != nil {
				return nil, errors.Join(err, p.Close())
			}
			cur = p
			return ts, nil
		},
	})
	if err != nil {
		return nil, errors.Join(err, pager.Close())
	}
	httpd := httptest.NewServer(server.NewHandler(srv, server.HandlerConfig{Shard: &keys}))
	return &shardProc{
		name:  name,
		fs:    fs,
		srv:   srv,
		httpd: httpd,
		close: func() {
			httpd.Close()
			//repolint:ignore latchederr fault phases may end with a deliberately broken server and pager
			srv.Close()
			//repolint:ignore latchederr fault phases may end with a deliberately broken server and pager
			cur.Close()
		},
	}, nil
}

// shardDeployment launches n shards tiling the key space and a router over
// them, with fast retry timing so fault phases do not dominate wall clock.
func shardDeployment(n int, sTree *rtree.Tree, pageSize int) ([]*shardProc, *router.Router, error) {
	ranges := zorder.UniformKeyRanges(n)
	procs := make([]*shardProc, 0, n)
	shards := make([]router.Shard, n)
	for i, keys := range ranges {
		name := fmt.Sprintf("shard%d", i)
		p, err := launchShard(name, keys, sTree, pageSize)
		if err != nil {
			for _, q := range procs {
				q.close()
			}
			return nil, nil, err
		}
		procs = append(procs, p)
		shards[i] = router.Shard{Name: name, URL: p.httpd.URL, Range: keys}
	}
	rt, err := router.New(router.Config{
		Shards:        shards,
		RetryAttempts: 2,
		RetryBackoff:  time.Millisecond,
		MaxRetryAfter: 5 * time.Millisecond,
	})
	if err != nil {
		for _, q := range procs {
			q.close()
		}
		return nil, nil, err
	}
	return procs, rt, nil
}

func closeDeployment(procs []*shardProc) {
	for _, p := range procs {
		p.close()
	}
}

func itemsToOps(items []rtree.Item, del bool) []server.OpWire {
	ops := make([]server.OpWire, len(items))
	for i, it := range items {
		ops[i] = server.OpWire{XL: it.Rect.XL, YL: it.Rect.YL, XU: it.Rect.XU, YU: it.Rect.YU,
			Data: it.Data, Delete: del}
	}
	return ops
}

func shardOracleHash(rItems, sItems []rtree.Item) (uint64, int) {
	var pairs []join.Pair
	for _, r := range rItems {
		for _, s := range sItems {
			if r.Rect.Intersects(s.Rect) {
				pairs = append(pairs, join.Pair{R: r.Data, S: s.Data})
			}
		}
	}
	return pairSetHash(pairs), len(pairs)
}

func wirePairsHash(pairs [][2]int32) uint64 {
	jp := make([]join.Pair, len(pairs))
	for i, p := range pairs {
		jp[i] = join.Pair{R: p[0], S: p[1]}
	}
	return pairSetHash(jp)
}

// RunShardBench runs the full benchmark and returns the report.
func RunShardBench(cfg ShardBenchConfig) *ShardBenchReport {
	cfg = cfg.withDefaults()
	report := &ShardBenchReport{Config: cfg}
	nR := int(10000 * cfg.Scale)
	nS := int(7500 * cfg.Scale)

	rng := rand.New(rand.NewSource(cfg.Seed))
	rItems := tortureItems(rng, nR, 0, 0.02)
	sItems := tortureItems(rng, nS, 1_000_000, 0.02)
	treeOpts := rtree.Options{PageSize: cfg.PageSize}
	sTree, err := rtree.BulkLoadSTR(treeOpts, sItems)
	if err != nil {
		report.fail("building S: %v", err)
		return report
	}
	ctx := context.Background()

	var baseWall, baseCritical time.Duration
	for _, n := range cfg.ShardCounts {
		res, err := runShardScale(ctx, report, cfg, n, rItems, sItems, sTree)
		if err != nil {
			report.fail("%d shards: %v", n, err)
			continue
		}
		if baseWall == 0 {
			baseWall, baseCritical = res.JoinWall, res.CriticalPath
		}
		if res.JoinWall > 0 {
			res.Speedup = float64(baseWall) / float64(res.JoinWall)
		}
		if res.CriticalPath > 0 {
			res.CriticalSpeedup = float64(baseCritical) / float64(res.CriticalPath)
		}
		report.Results = append(report.Results, res)
	}

	runShardFaultPhase(ctx, report, cfg, rItems, sItems, sTree)
	runShardShedPhase(ctx, report, sTree, cfg.PageSize)
	return report
}

// runShardScale measures one deployment size: load, parity over SJ1..SJ5,
// churn rounds with a parity check after, and the timed joins.
func runShardScale(ctx context.Context, report *ShardBenchReport, cfg ShardBenchConfig,
	n int, rItems, sItems []rtree.Item, sTree *rtree.Tree) (ShardScalingResult, error) {

	res := ShardScalingResult{Shards: n, ParityOK: true}
	procs, rt, err := shardDeployment(n, sTree, cfg.PageSize)
	if err != nil {
		return res, err
	}
	defer closeDeployment(procs)

	live := append([]rtree.Item(nil), rItems...)
	if staged, err := rt.Update(ctx, itemsToOps(live, false)); err != nil || staged != len(live) {
		return res, fmt.Errorf("loading %d items: staged %d, err %v", len(live), staged, err)
	}
	if err := rt.Round(ctx); err != nil {
		return res, fmt.Errorf("load round: %w", err)
	}

	wantHash, wantPairs := shardOracleHash(live, sItems)
	res.Pairs = wantPairs
	checkParity := func(label string) {
		for _, m := range join.Methods {
			jr, err := rt.Join(ctx, router.JoinRequest{Method: int(m)})
			if err != nil {
				report.fail("%d shards, %s, %v: %v", n, label, m, err)
				res.ParityOK = false
				continue
			}
			if jr.Count != wantPairs || wirePairsHash(jr.Pairs) != wantHash {
				report.fail("%d shards, %s, %v: %d pairs (hash %x), oracle %d (hash %x)",
					n, label, m, jr.Count, wirePairsHash(jr.Pairs), wantPairs, wantHash)
				res.ParityOK = false
			}
		}
	}
	checkParity("loaded")

	// Churn waves: delete+insert pairs routed by centre key, committed as
	// one round per wave across every shard.
	churnRng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
	next := int32(500_000)
	for round := 0; round < cfg.ChurnRounds; round++ {
		k := cfg.ChurnPerRound
		if k > len(live) {
			k = len(live)
		}
		fresh := tortureItems(churnRng, k, next, 0.02)
		next += int32(k)
		ops := append(itemsToOps(live[:k], true), itemsToOps(fresh, false)...)
		if _, err := rt.Update(ctx, ops); err != nil {
			return res, fmt.Errorf("churn round %d: %w", round, err)
		}
		if err := rt.Round(ctx); err != nil {
			return res, fmt.Errorf("churn round %d flip: %w", round, err)
		}
		live = append(append([]rtree.Item(nil), live[k:]...), fresh...)
		res.Rounds++
	}
	wantHash, wantPairs = shardOracleHash(live, sItems)
	res.Pairs = wantPairs
	checkParity("churned")

	// Timed joins over the churned state (default method), medians reported.
	walls := make([]time.Duration, 0, cfg.Repeats)
	criticals := make([]time.Duration, 0, cfg.Repeats)
	for i := 0; i < cfg.Repeats; i++ {
		start := time.Now()
		jr, err := rt.Join(ctx, router.JoinRequest{})
		wall := time.Since(start)
		if err != nil {
			return res, fmt.Errorf("timed join %d: %w", i, err)
		}
		var critical time.Duration
		for _, o := range jr.Shards {
			if o.Wall > critical {
				critical = o.Wall
			}
		}
		walls = append(walls, wall)
		criticals = append(criticals, critical)
	}
	res.JoinWall = medianDuration(walls)
	res.CriticalPath = medianDuration(criticals)
	return res, nil
}

// runShardFaultPhase kills one shard's disk mid-deployment and checks the
// failure is typed and total, then heals and re-verifies parity.
func runShardFaultPhase(ctx context.Context, report *ShardBenchReport, cfg ShardBenchConfig,
	rItems, sItems []rtree.Item, sTree *rtree.Tree) {

	procs, rt, err := shardDeployment(2, sTree, cfg.PageSize)
	if err != nil {
		report.fail("fault phase: %v", err)
		return
	}
	defer closeDeployment(procs)
	if _, err := rt.Update(ctx, itemsToOps(rItems, false)); err != nil {
		report.fail("fault phase load: %v", err)
		return
	}
	if err := rt.Round(ctx); err != nil {
		report.fail("fault phase round: %v", err)
		return
	}

	procs[1].fs.SetScript(storage.FaultScript{ReadErrEvery: 1})
	res, err := rt.Join(ctx, router.JoinRequest{})
	var perr *router.PartialError
	switch {
	case err == nil:
		report.fail("fault phase: join over a dead shard succeeded with %d pairs", res.Count)
	case !errors.As(err, &perr):
		report.fail("fault phase: untyped error %v", err)
	case len(perr.Failures) != 1 || perr.Failures[0].Shard != procs[1].name:
		report.fail("fault phase: failures %v, want exactly %s", perr.Failures, procs[1].name)
	case res != nil:
		report.fail("fault phase: partial failure still returned pairs")
	default:
		report.FaultTyped = true
	}

	procs[1].fs.SetScript(storage.FaultScript{})
	if err := procs[1].srv.Reopen(); err != nil {
		report.fail("fault phase reopen: %v", err)
		return
	}
	wantHash, wantPairs := shardOracleHash(rItems, sItems)
	jr, err := rt.Join(ctx, router.JoinRequest{})
	if err != nil {
		report.fail("fault phase join after heal: %v", err)
		return
	}
	if jr.Count != wantPairs || wirePairsHash(jr.Pairs) != wantHash {
		report.fail("fault phase: healed join %d pairs, oracle %d", jr.Count, wantPairs)
		return
	}
	report.FaultHealed = true
}

// runShardShedPhase puts a 1ns cost budget on one shard — every join sheds
// with 503 + Retry-After — and checks the router retries it the configured
// number of times, then surfaces a typed 503, not a truncated result.
func runShardShedPhase(ctx context.Context, report *ShardBenchReport, sTree *rtree.Tree, pageSize int) {
	ranges := zorder.UniformKeyRanges(2)
	healthy, err := launchShard("healthy", ranges[0], sTree, pageSize)
	if err != nil {
		report.fail("shed phase: %v", err)
		return
	}
	defer healthy.close()

	// The shedding shard: same server core with an admission budget no
	// request can fit.
	treeOpts := rtree.Options{PageSize: pageSize}
	tree, err := rtree.New(treeOpts)
	if err != nil {
		report.fail("shed phase: %v", err)
		return
	}
	pager, err := storage.OpenPager(storage.NewMemVFS(), "shed.db", pageSize, storage.PagerOptions{})
	if err != nil {
		report.fail("shed phase: %v", err)
		return
	}
	store, err := rtree.NewTreeStore(tree, pager)
	if err != nil {
		report.fail("shed phase: %v", err)
		return
	}
	shedSrv, err := server.New(server.Config{Store: store, S: sTree, CostBudget: 1})
	if err != nil {
		report.fail("shed phase: %v", err)
		return
	}
	shedHTTP := httptest.NewServer(server.NewHandler(shedSrv, server.HandlerConfig{Shard: &ranges[1]}))
	defer func() {
		shedHTTP.Close()
		if err := shedSrv.Close(); err != nil {
			report.fail("shed phase close: %v", err)
		}
		if err := pager.Close(); err != nil {
			report.fail("shed phase pager close: %v", err)
		}
	}()

	const attempts = 3
	rt, err := router.New(router.Config{
		Shards: []router.Shard{
			{Name: "healthy", URL: healthy.httpd.URL, Range: ranges[0]},
			{Name: "shedding", URL: shedHTTP.URL, Range: ranges[1]},
		},
		RetryAttempts: attempts,
		RetryBackoff:  time.Millisecond,
		MaxRetryAfter: 5 * time.Millisecond,
	})
	if err != nil {
		report.fail("shed phase: %v", err)
		return
	}
	_, err = rt.Join(ctx, router.JoinRequest{})
	var perr *router.PartialError
	if !errors.As(err, &perr) || len(perr.Failures) != 1 || perr.Failures[0].Shard != "shedding" {
		report.fail("shed phase: error %v, want a *PartialError naming the shedding shard", err)
		return
	}
	var se *router.StatusError
	if !errors.As(perr.Failures[0], &se) || se.Code != http.StatusServiceUnavailable {
		report.fail("shed phase: terminal error %v, want a 503 StatusError", perr.Failures[0])
		return
	}
	report.ShedTyped = true
	report.ShedAttempts = attempts
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// PrintShardReport renders the benchmark report.
func PrintShardReport(w io.Writer, r *ShardBenchReport) {
	fmt.Fprintln(w, "Sharded deployment benchmark: Hilbert-range shards behind the query router")
	fmt.Fprintf(w, "(R=%d x S=%d at scale %.2f, %d churn rounds x %d ops; parity = SJ1..SJ5 vs brute-force oracle)\n",
		int(10000*r.Config.Scale), int(7500*r.Config.Scale), r.Config.Scale,
		r.Config.ChurnRounds, r.Config.ChurnPerRound)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-7s %9s %7s %7s %12s %12s %9s %9s\n",
		"shards", "pairs", "parity", "rounds", "join-wall", "crit-path", "speedup", "crit-spd")
	for _, res := range r.Results {
		parity := "OK"
		if !res.ParityOK {
			parity = "FAIL"
		}
		fmt.Fprintf(w, "%-7d %9d %7s %7d %12s %12s %8.2fx %8.2fx\n",
			res.Shards, res.Pairs, parity, res.Rounds,
			fmtLatency(res.JoinWall), fmtLatency(res.CriticalPath),
			res.Speedup, res.CriticalSpeedup)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "fault phase: typed=%v healed=%v; shed phase: typed=%v after %d attempts\n",
		r.FaultTyped, r.FaultHealed, r.ShedTyped, r.ShedAttempts)
	fmt.Fprintln(w, "(single-core host: join-wall serialises the shards; crit-path is the per-shard")
	fmt.Fprintln(w, " lower bound a multi-machine deployment converges to)")
	if len(r.Failures) == 0 {
		fmt.Fprintln(w, "no violations")
		return
	}
	fmt.Fprintf(w, "%d VIOLATIONS:\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  - %s\n", f)
	}
}
