package experiments

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Server torture harness (robustness extension): an open-loop churn+query
// workload drives the concurrent join server over a FaultFS while the script
// injects flaky reads, a dead disk, failing fsyncs, and a mid-round power
// cut.  The invariant checked for every single admitted query: it returns
// either a result identical to the sequential join over its epoch's item set
// (pair-set hash equality against a brute-force model) or one of the typed
// errors (ErrShed / ErrDeadline / join.ErrCancelled / ErrServerBroken) —
// never a hang, never a torn snapshot.  After each destructive phase the
// server must reopen to the last committed state, and the harness reports
// tail latency, shed rate and recovery time per phase.
// ---------------------------------------------------------------------------

// ServerTortureConfig parameterises the harness.  The zero value runs the
// default workload.
type ServerTortureConfig struct {
	// Items and SItems are the cardinalities of the churned relation R and
	// the static relation S (defaults 500 and 350).
	Items, SItems int
	// Readers is the number of concurrent query workers (default 4).
	Readers int
	// Waves is the number of churn rounds per concurrent phase, each
	// followed by QueriesPerWave queries racing the next round (defaults 4
	// and 12).
	Waves, QueriesPerWave int
	// ChurnPerRound is how many delete+insert pairs each round stages
	// (default 50).
	ChurnPerRound int
	// PageSize is the page size of tree and pager (default 1K).
	PageSize int
	// Deadline is the per-query deadline (default 5s — generous, so only
	// the injected faults produce errors).
	Deadline time.Duration
	// MaxInflight and CostBudget pass through to the server's admission
	// control (zero keeps the server defaults).  Setting MaxInflight below
	// Readers turns the clean phases into an overload run that measures
	// shed rate.
	MaxInflight int
	CostBudget  time.Duration
	// QueryWorkers > 1 runs each query as a ParallelJoin.  On a single-CPU
	// host sequential queries never yield mid-join, so admission overlap —
	// and therefore shedding — only shows up when the worker handoff gives
	// the scheduler a switch point.
	QueryWorkers int
	// Seed seeds the workload (default 7).
	Seed int64
}

func (c ServerTortureConfig) withDefaults() ServerTortureConfig {
	if c.Items <= 0 {
		c.Items = 500
	}
	if c.SItems <= 0 {
		c.SItems = 350
	}
	if c.Readers <= 0 {
		c.Readers = 4
	}
	if c.Waves <= 0 {
		c.Waves = 4
	}
	if c.QueriesPerWave <= 0 {
		c.QueriesPerWave = 12
	}
	if c.ChurnPerRound <= 0 {
		c.ChurnPerRound = 50
	}
	if c.PageSize <= 0 {
		c.PageSize = storage.PageSize1K
	}
	if c.Deadline <= 0 {
		c.Deadline = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// ServerPhaseResult is the outcome of one torture phase.
type ServerPhaseResult struct {
	Name    string
	Queries int // query attempts
	Done    int // returned a verified result
	Shed    int
	Deadlined,
	Cancelled int
	Broken  int // failed with ErrServerBroken
	Retried int // succeeded after server-level retries
	Rounds  int // writer rounds committed

	// P50/P99/P999 are wall-clock latencies over the successful queries.
	P50, P99, P999 time.Duration
	// ShedRate is Shed / Queries.
	ShedRate float64
	// Recovery is the wall time of the Reopen after this phase's fault (0
	// for phases that do not break the server).
	Recovery time.Duration
}

// ServerTortureReport is the outcome of the whole harness run.
type ServerTortureReport struct {
	Phases   []ServerPhaseResult
	Failures []string
	// TotalQueries and Verified count every attempt across phases and the
	// subset whose result hash-matched the model.
	TotalQueries, Verified int
	// GoroutinesLeaked is set when goroutines survive server shutdown.
	GoroutinesLeaked int
}

// Ok reports whether the harness observed no violation.
func (r *ServerTortureReport) Ok() bool {
	return len(r.Failures) == 0 && r.GoroutinesLeaked == 0
}

// tortureHarness owns the server under test and the brute-force model.
type tortureHarness struct {
	cfg    ServerTortureConfig
	fs     *storage.FaultFS
	srv    *server.Server
	sItems []rtree.Item
	rng    *rand.Rand
	next   int32

	// modelMu guards the committed item sets and their pair-set hashes,
	// keyed by epoch sequence.  Entries are recorded before the flip that
	// publishes them, so a reader can never see an epoch without a model.
	modelMu sync.RWMutex
	models  map[uint64][]rtree.Item
	hashes  map[uint64]uint64
	live    []rtree.Item // the writer's last acknowledged item set
	// pending is the target state of a round whose commit returned an
	// error.  An unacknowledged commit may still be durable (the WAL can
	// hold the full commit record even when the fsync reported failure, or
	// when the power cut landed just after it), so recovery may come back
	// either to live or to pending.
	pending []rtree.Item

	// sleepMu guards the pluggable retry-backoff hook.
	sleepMu   sync.Mutex
	sleepHook func()

	failMu   sync.Mutex
	failures []string
}

// tortureItems generates items whose coordinates are exactly representable
// in the on-disk format (pages store rects as float32).  Deletes match
// entries by exact rect equality, so a rect that survives an encode/decode
// round trip unchanged is required for deletes staged after a Reopen — the
// reopened tree holds the decoded coordinates — to find their entries.
func tortureItems(rng *rand.Rand, n int, base int32, side float64) []rtree.Item {
	q := func(v float64) float64 { return float64(float32(v)) }
	items := make([]rtree.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = rtree.Item{
			Rect: geom.Rect{XL: q(x), YL: q(y), XU: q(x + side), YU: q(y + side)},
			Data: base + int32(i),
		}
	}
	return items
}

// pairSetHash is the order-independent fingerprint of a join result: FNV-64a
// over the sorted (R, S) id pairs.  Two queries of the same epoch must
// produce equal hashes; a hash equal to the brute-force model's proves the
// result is exactly the sequential answer for that epoch's item set.
func pairSetHash(pairs []join.Pair) uint64 {
	sorted := append([]join.Pair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].R != sorted[j].R {
			return sorted[i].R < sorted[j].R
		}
		return sorted[i].S < sorted[j].S
	})
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range sorted {
		binary.LittleEndian.PutUint32(buf[:4], uint32(p.R))
		binary.LittleEndian.PutUint32(buf[4:], uint32(p.S))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func (h *tortureHarness) brutePairs(items []rtree.Item) []join.Pair {
	var out []join.Pair
	for _, r := range items {
		for _, s := range h.sItems {
			if r.Rect.Intersects(s.Rect) {
				out = append(out, join.Pair{R: r.Data, S: s.Data})
			}
		}
	}
	return out
}

func (h *tortureHarness) fail(format string, args ...any) {
	h.failMu.Lock()
	defer h.failMu.Unlock()
	h.failures = append(h.failures, fmt.Sprintf(format, args...))
}

// recordModel stores the item set that the NEXT successful round publishes.
func (h *tortureHarness) recordModel(seq uint64, items []rtree.Item) {
	cp := append([]rtree.Item(nil), items...)
	h.modelMu.Lock()
	h.models[seq] = cp
	h.hashes[seq] = pairSetHash(h.brutePairs(cp))
	h.modelMu.Unlock()
}

func (h *tortureHarness) dropModel(seq uint64) {
	h.modelMu.Lock()
	delete(h.models, seq)
	delete(h.hashes, seq)
	h.modelMu.Unlock()
}

func (h *tortureHarness) resetModels() {
	h.modelMu.Lock()
	h.models = make(map[uint64][]rtree.Item)
	h.hashes = make(map[uint64]uint64)
	h.modelMu.Unlock()
}

func (h *tortureHarness) modelHash(seq uint64) (uint64, bool) {
	h.modelMu.RLock()
	defer h.modelMu.RUnlock()
	v, ok := h.hashes[seq]
	return v, ok
}

// churnRound stages ChurnPerRound delete+insert pairs and commits them as
// one round, keeping the model in lockstep with the published epochs.
func (h *tortureHarness) churnRound() error {
	n := h.cfg.ChurnPerRound
	if n > len(h.live) {
		n = len(h.live)
	}
	var ops []server.Op
	for _, it := range h.live[:n] {
		ops = append(ops, server.Op{Rect: it.Rect, Data: it.Data, Delete: true})
	}
	fresh := tortureItems(h.rng, n, h.next, 0.02)
	h.next += int32(n)
	for _, it := range fresh {
		ops = append(ops, server.Op{Rect: it.Rect, Data: it.Data})
	}
	nextLive := append(append([]rtree.Item(nil), h.live[n:]...), fresh...)

	if err := h.srv.Update(ops); err != nil {
		return err
	}
	// The model for the next epoch must exist before the flip publishes it.
	seq := h.srv.CurrentEpoch() + 1
	h.recordModel(seq, nextLive)
	if _, err := h.srv.Round(); err != nil {
		h.dropModel(seq)
		h.pending = nextLive
		return err
	}
	h.pending = nil
	h.live = nextLive
	return nil
}

// query runs one join and classifies the outcome.
func (h *tortureHarness) query(res *ServerPhaseResult, lat *[]time.Duration, mu *sync.Mutex) {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.Deadline)
	defer cancel()
	start := time.Now()
	resp, err := h.srv.Join(ctx, server.JoinRequest{Workers: h.cfg.QueryWorkers})
	elapsed := time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	res.Queries++
	switch {
	case err == nil:
		res.Done++
		*lat = append(*lat, elapsed)
		if resp.Retries > 0 {
			res.Retried++
		}
		want, ok := h.modelHash(resp.Epoch)
		if !ok {
			h.fail("%s: no model for epoch %d", res.Name, resp.Epoch)
			return
		}
		if got := pairSetHash(resp.Pairs); got != want {
			h.fail("%s: epoch %d result hash %x, want %x (%d pairs) — torn snapshot",
				res.Name, resp.Epoch, got, want, len(resp.Pairs))
		}
	case errors.Is(err, server.ErrShed):
		res.Shed++
	case errors.Is(err, server.ErrDeadline):
		res.Deadlined++
	case errors.Is(err, join.ErrCancelled):
		res.Cancelled++
	case errors.Is(err, server.ErrServerBroken):
		res.Broken++
	default:
		h.fail("%s: untyped error: %v", res.Name, err)
	}
}

// runConcurrentPhase drives Waves rounds of churn, each racing
// QueriesPerWave queries spread over Readers workers.
func (h *tortureHarness) runConcurrentPhase(name string, script storage.FaultScript) ServerPhaseResult {
	h.fs.SetScript(script)
	defer h.fs.SetScript(storage.FaultScript{})

	res := ServerPhaseResult{Name: name}
	var lat []time.Duration
	var mu sync.Mutex

	queries := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < h.cfg.Readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range queries {
				h.query(&res, &lat, &mu)
			}
		}()
	}
	for wave := 0; wave < h.cfg.Waves; wave++ {
		if err := h.churnRound(); err != nil {
			// Only a broken server may refuse a round, and only while a
			// fault script is active.
			if !errors.Is(err, server.ErrServerBroken) {
				h.fail("%s: round error: %v", name, err)
			}
		} else {
			res.Rounds++
		}
		for q := 0; q < h.cfg.QueriesPerWave; q++ {
			queries <- struct{}{}
		}
	}
	close(queries)
	wg.Wait()

	finishPhase(&res, lat)
	return res
}

func finishPhase(res *ServerPhaseResult, lat []time.Duration) {
	if res.Queries > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Queries)
	}
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(p float64) time.Duration {
		idx := int(p * float64(len(lat)-1))
		return lat[idx]
	}
	res.P50, res.P99, res.P999 = pick(0.50), pick(0.99), pick(0.999)
}

// reopenAndVerify recovers a broken server and checks the recovered state is
// exactly the last committed item set.
func (h *tortureHarness) reopenAndVerify(res *ServerPhaseResult) {
	if !h.srv.Broken() {
		h.fail("%s: server not broken before reopen", res.Name)
	}
	start := time.Now()
	if err := h.srv.Reopen(); err != nil {
		h.fail("%s: reopen: %v", res.Name, err)
		return
	}
	res.Recovery = time.Since(start)

	resp, err := h.srv.Join(context.Background(), server.JoinRequest{})
	if err != nil {
		h.fail("%s: join after reopen: %v", res.Name, err)
		return
	}
	got := pairSetHash(resp.Pairs)
	switch {
	case got == pairSetHash(h.brutePairs(h.live)):
		// Recovered to the last acknowledged commit.
	case h.pending != nil && got == pairSetHash(h.brutePairs(h.pending)):
		// The unacknowledged round proved durable after all; adopt it.
		h.live = h.pending
	default:
		h.fail("%s: recovered state hash %x (%d pairs) matches neither the last committed (%d pairs) nor the pending round (pending=%v)",
			res.Name, got, len(resp.Pairs), len(h.brutePairs(h.live)), h.pending != nil)
	}
	h.pending = nil

	// The reopened store restarts its commit sequence; re-key the model.
	h.resetModels()
	h.recordModel(h.srv.CurrentEpoch(), h.live)
}

// RunServerTorture runs the full phased workload and returns the report.
func RunServerTorture(cfg ServerTortureConfig) *ServerTortureReport {
	cfg = cfg.withDefaults()
	goroutinesBefore := runtime.NumGoroutine()
	report := &ServerTortureReport{}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rItems := tortureItems(rng, cfg.Items, 0, 0.02)
	sItems := tortureItems(rng, cfg.SItems, 1_000_000, 0.02)
	treeOpts := rtree.Options{PageSize: cfg.PageSize}
	rTree, err := rtree.BulkLoadSTR(treeOpts, rItems)
	if err != nil {
		report.Failures = append(report.Failures, err.Error())
		return report
	}
	sTree, err := rtree.BulkLoadSTR(treeOpts, sItems)
	if err != nil {
		report.Failures = append(report.Failures, err.Error())
		return report
	}

	fs := storage.NewFaultFS(storage.NewMemVFS(), storage.FaultScript{})
	pagerOpts := storage.PagerOptions{ReadRetries: 2, Sleep: func(time.Duration) {}}
	pager, err := storage.OpenPager(fs, "server.db", cfg.PageSize, pagerOpts)
	if err != nil {
		report.Failures = append(report.Failures, err.Error())
		return report
	}
	store, err := rtree.NewTreeStore(rTree, pager)
	if err != nil {
		report.Failures = append(report.Failures, err.Error())
		return report
	}

	h := &tortureHarness{
		cfg:    cfg,
		fs:     fs,
		sItems: sItems,
		rng:    rng,
		next:   int32(500_000),
		models: make(map[uint64][]rtree.Item),
		hashes: make(map[uint64]uint64),
		live:   append([]rtree.Item(nil), rItems...),
	}
	srv, err := server.New(server.Config{
		Store:           store,
		S:               sTree,
		BatchCapacity:   2 * cfg.ChurnPerRound,
		MaxInflight:     cfg.MaxInflight,
		CostBudget:      cfg.CostBudget,
		DefaultDeadline: cfg.Deadline,
		RetryAttempts:   2,
		CacheBytes:      64 * cfg.PageSize,
		Sleep: func(context.Context, time.Duration) {
			h.sleepMu.Lock()
			hook := h.sleepHook
			h.sleepMu.Unlock()
			if hook != nil {
				hook()
			}
		},
		Reopen: func() (*rtree.TreeStore, error) {
			// After a power cut the FaultFS rejects everything; the
			// replacement disk is the underlying MemVFS with whatever
			// survived the crash.
			var vfs storage.VFS = fs
			if fs.Crashed() {
				vfs = fs.Base()
			}
			p, err := storage.OpenPager(vfs, "server.db", cfg.PageSize, pagerOpts)
			if err != nil {
				return nil, err
			}
			return rtree.OpenTreeStore(p, treeOpts)
		},
	})
	if err != nil {
		report.Failures = append(report.Failures, err.Error())
		return report
	}
	h.srv = srv
	h.recordModel(srv.CurrentEpoch(), h.live)

	// Phase 1: clean — churn racing queries, no faults.
	report.Phases = append(report.Phases, h.runConcurrentPhase("clean", storage.FaultScript{}))

	// Phase 2: flaky reads — every 37th read attempt fails; the pager's own
	// retry absorbs all of them, so every query still verifies.
	report.Phases = append(report.Phases,
		h.runConcurrentPhase("flaky-reads", storage.FaultScript{ReadErrEvery: 37}))

	// Phase 3: transient dead disk — every read fails until the server's
	// first retry backoff, whose hook heals the disk.  Deterministically
	// exercises the retry path: the query must succeed with Retries > 0.
	func() {
		res := ServerPhaseResult{Name: "transient-read"}
		// A fresh round first: its epoch starts with an empty page cache, so
		// the query below must actually touch the (dead) disk rather than be
		// served from pages the previous phase already cached.
		if err := h.churnRound(); err != nil {
			h.fail("transient-read: setup round: %v", err)
			return
		}
		res.Rounds++
		h.sleepMu.Lock()
		h.sleepHook = func() { h.fs.SetScript(storage.FaultScript{}) }
		h.sleepMu.Unlock()
		defer func() {
			h.sleepMu.Lock()
			h.sleepHook = nil
			h.sleepMu.Unlock()
		}()
		h.fs.SetScript(storage.FaultScript{ReadErrEvery: 1})
		var lat []time.Duration
		var mu sync.Mutex
		h.query(&res, &lat, &mu)
		if res.Retried == 0 {
			h.fail("transient-read: query did not record a retry (done=%d broken=%d)",
				res.Done, res.Broken)
		}
		finishPhase(&res, lat)
		report.Phases = append(report.Phases, res)
	}()

	// Phase 4: dead disk — reads fail persistently, retries exhaust, the
	// server latches broken and every later query fails fast and typed.
	func() {
		res := h.runConcurrentPhase("dead-reads", storage.FaultScript{ReadErrEvery: 1})
		if res.Broken == 0 {
			h.fail("dead-reads: no query observed ErrServerBroken")
		}
		h.reopenAndVerify(&res)
		report.Phases = append(report.Phases, res)
	}()

	// Phase 5: failing fsync — the round's commit cannot become durable,
	// the writer breaks the server, queries fail fast and typed.
	func() {
		res := h.runConcurrentPhase("sync-fail", storage.FaultScript{SyncErrEvery: 1})
		if !h.srv.Broken() {
			h.fail("sync-fail: commit with failing fsync did not break the server")
		}
		h.reopenAndVerify(&res)
		report.Phases = append(report.Phases, res)
	}()

	// Phase 6: mid-round power cut — the disk dies partway through a
	// commit; recovery must come back to the last committed round exactly.
	func() {
		res := ServerPhaseResult{Name: "power-cut"}
		h.fs.SetScript(storage.FaultScript{CrashAtOp: h.fs.Ops() + 10, TornSeed: cfg.Seed})
		if err := h.churnRound(); err == nil {
			h.fail("power-cut: round survived the scripted crash")
		}
		if !h.fs.Crashed() {
			h.fail("power-cut: crash point never fired")
		}
		var lat []time.Duration
		var mu sync.Mutex
		h.query(&res, &lat, &mu) // must fail fast and typed, not hang
		h.reopenAndVerify(&res)
		finishPhase(&res, lat)
		report.Phases = append(report.Phases, res)
	}()

	if err := srv.Close(); err != nil {
		report.Failures = append(report.Failures, fmt.Sprintf("close: %v", err))
	}
	// The power cut latched the pager broken on purpose; its close error is
	// the fault the phase just verified, not a new failure.
	//repolint:ignore latchederr the injected crash is why Close fails; the phase already verified recovery
	pager.Close()

	// Goroutine-leak check: everything the server and its joins spawned
	// must be gone shortly after shutdown.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore {
			break
		} else if time.Now().After(deadline) {
			report.GoroutinesLeaked = n - goroutinesBefore
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, p := range report.Phases {
		report.TotalQueries += p.Queries
		report.Verified += p.Done
	}
	report.Failures = append(report.Failures, h.failures...)
	return report
}

// PrintServerReport renders the torture report as a table.
func PrintServerReport(w io.Writer, r *ServerTortureReport) {
	fmt.Fprintln(w, "Server torture harness: open-loop churn+query workload under injected faults")
	fmt.Fprintln(w, "(every admitted query: verified result or typed error; latencies are wall-clock)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-15s %8s %6s %5s %6s %7s %7s %10s %10s %10s %9s %10s\n",
		"phase", "queries", "done", "shed", "brokn", "dline", "retry", "p50", "p99", "p999", "shed%", "recovery")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-15s %8d %6d %5d %6d %7d %7d %10s %10s %10s %8.1f%% %10s\n",
			p.Name, p.Queries, p.Done, p.Shed, p.Broken, p.Deadlined, p.Retried,
			fmtLatency(p.P50), fmtLatency(p.P99), fmtLatency(p.P999),
			100*p.ShedRate, fmtLatency(p.Recovery))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%d queries, %d results verified bit-identical to the sequential model\n",
		r.TotalQueries, r.Verified)
	if r.GoroutinesLeaked > 0 {
		fmt.Fprintf(w, "GOROUTINE LEAK: %d goroutines survived shutdown\n", r.GoroutinesLeaked)
	}
	if len(r.Failures) == 0 {
		fmt.Fprintln(w, "no violations")
		return
	}
	fmt.Fprintf(w, "%d VIOLATIONS:\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  - %s\n", f)
	}
}

func fmtLatency(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Microsecond).String()
}
