package experiments

import (
	"fmt"
	"io"

	"repro/internal/datagen"
	"repro/internal/join"
	"repro/internal/rtree"
)

// ---------------------------------------------------------------------------
// Update-heavy workloads (extension): Hilbert-buffered maintenance batches
// interleaved with parallel joins, with the catalog-recollection ablation.
// ---------------------------------------------------------------------------

// UpdateRounds is the number of update-then-join rounds the experiment runs.
const UpdateRounds = 2

// UpdateWorkers is the worker count of the interleaved parallel joins.
const UpdateWorkers = 8

// UpdateBatchPercent is the share of each relation turned over per round:
// that many per cent of the live rectangles are deleted (oldest first) and
// the same number of fresh rectangles inserted through a Hilbert insertion
// buffer.
const UpdateBatchPercent = 10

// UpdateRow is one strategy's join after one update round.  Rows come in two
// blocks: Maintained=true runs with incremental catalog maintenance (the
// default), Maintained=false ablates it, so every post-mutation planning pass
// recollects the statistics with a full-tree sampling walk — the stall the
// maintenance removes.
type UpdateRow struct {
	// Maintained is false for the recollection-stall ablation block.
	Maintained bool
	// Round is the 1-based update round.
	Round    int
	Strategy join.PartitionStrategy
	// Tasks and Pairs describe the join after the round's updates; Pairs is
	// checked against the sequential join inside the experiment.
	Tasks int
	Pairs int
	// HintHitRate is the share of the round's buffered inserts that took the
	// leaf-hint fast path (one value per round, repeated on each row).
	HintHitRate float64
	// EstErrPct is the mean over workers of |predicted - actual| / actual in
	// per cent, for the estimate-driven static strategies (LPT, spatial).  It
	// is -1 for strategies whose split is not the predicted schedule (dynamic,
	// round-robin, stealing).  This is the estimator-freshness measure: the
	// maintained catalog must keep it in the PR-4 band without ever walking
	// the tree.
	EstErrPct float64
	TimeSkew  float64
	Steals    int
	// CatalogWalks is how many from-scratch recollection walks the two trees
	// performed during this row's planning, and WalkedPages the pages those
	// walks touched.  With maintenance on both must be zero for every row.
	CatalogWalks int
	WalkedPages  int64
}

// UpdatePair is one relation under update churn: its tree, its live items
// (oldest first) and the id sequence for freshly inserted rectangles.  It is
// exported so the size-scaled benchmark (BenchmarkLargeJoinUpdates) drives
// the identical turnover protocol the experiment table measures.
type UpdatePair struct {
	Tree *rtree.Tree
	// Live holds the current contents oldest first; TurnOver consumes from
	// the front and appends the fresh batch.
	Live []rtree.Item
	// NextID is the id given to the next freshly inserted rectangle; keep it
	// above every live id so turnover batches never collide.
	NextID int32
	Kind   datagen.Kind
	Seed   int64
}

// TurnOver deletes the oldest UpdateBatchPercent of the live items and
// inserts an equally sized batch of fresh ones through a Hilbert insertion
// buffer, validating the tree afterwards.  It returns the buffer's hint hits
// and applied count.
func (u *UpdatePair) TurnOver(round int) (hits, applied int) {
	batch := len(u.Live) * UpdateBatchPercent / 100
	if batch < 1 {
		batch = 1
	}
	for _, it := range u.Live[:batch] {
		if !u.Tree.Delete(it.Rect, it.Data) {
			panic(fmt.Sprintf("experiments: update delete of live item %d failed", it.Data))
		}
	}
	u.Live = u.Live[batch:]
	fresh := datagen.Generate(datagen.Config{Kind: u.Kind, Count: batch, Seed: u.Seed + int64(round)})
	buf := rtree.NewInsertBuffer(u.Tree, batch)
	for _, it := range fresh {
		it.Data = u.NextID
		u.NextID++
		buf.Stage(it.Rect, it.Data)
		u.Live = append(u.Live, it)
	}
	buf.Flush()
	if err := u.Tree.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("experiments: tree invalid after update round %d: %v", round, err))
	}
	return buf.HintHits(), buf.Applied()
}

// updateStrategies is the full strategy sweep of the update experiment: the
// dynamic shared queue plus every per-worker schedule.
func updateStrategies() []join.PartitionStrategy {
	return append([]join.PartitionStrategy{join.PartitionDynamic}, join.PartitionStrategies...)
}

// TableUpdates interleaves batched updates (Hilbert-buffered inserts plus
// oldest-first deletes, UpdateBatchPercent of each relation per round) with
// SJ4 parallel joins across all five partition strategies, twice: once with
// incremental catalog maintenance (the default) and once with it ablated.
// Every join's result is verified against the sequential join on the mutated
// trees; the CatalogWalks column isolates the recollection stall the
// maintenance removes, and EstErrPct shows the estimator staying healthy on
// statistics that were never recollected.
func (s *Suite) TableUpdates() []UpdateRow {
	var rows []UpdateRow
	for _, maintained := range []bool{true, false} {
		rows = append(rows, s.updateBlock(maintained)...)
	}
	return rows
}

// updateBlock runs the rounds for one maintenance mode on freshly built
// trees (the suite's cached trees must stay immutable for the other tables).
func (s *Suite) updateBlock(maintained bool) []UpdateRow {
	r := &UpdatePair{
		Live: append([]rtree.Item(nil), s.streets()...),
		Kind: datagen.Streets, Seed: 7101, NextID: 1 << 20,
	}
	t := &UpdatePair{
		Live: append([]rtree.Item(nil), s.rivers()...),
		Kind: datagen.Rivers, Seed: 7202, NextID: 1 << 20,
	}
	for _, u := range []*UpdatePair{r, t} {
		u.Tree = rtree.MustNew(rtree.Options{PageSize: ParallelPageSize})
		u.Tree.InsertItems(u.Live)
		u.Tree.SetCatalogMaintenance(maintained)
	}

	var rows []UpdateRow
	for round := 1; round <= UpdateRounds; round++ {
		hitsR, appliedR := r.TurnOver(round)
		hitsT, appliedT := t.TurnOver(round)
		hintRate := 0.0
		if appliedR+appliedT > 0 {
			hintRate = float64(hitsR+hitsT) / float64(appliedR+appliedT)
		}
		seq := s.runJoin(r.Tree, t.Tree, join.SJ4, ParallelBufferKB, nil)
		pagesR := int64(r.Tree.Stats().TotalPages())
		pagesT := int64(t.Tree.Stats().TotalPages())
		for _, strategy := range updateStrategies() {
			walksR0, walksT0 := r.Tree.CatalogRecollections(), t.Tree.CatalogRecollections()
			res, err := join.ParallelJoin(r.Tree, t.Tree, join.ParallelOptions{
				Options: join.Options{
					Method:        join.SJ4,
					BufferBytes:   ParallelBufferKB << 10,
					UsePathBuffer: s.cfg.UsePathBuffer,
					DiscardPairs:  true,
				},
				Workers:  UpdateWorkers,
				Strategy: strategy,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: update join %v round %d: %v", strategy, round, err))
			}
			if res.Count != seq.Count {
				panic(fmt.Sprintf("experiments: update join %v round %d found %d pairs, sequential %d",
					strategy, round, res.Count, seq.Count))
			}
			dWalksR := r.Tree.CatalogRecollections() - walksR0
			dWalksT := t.Tree.CatalogRecollections() - walksT0
			row := UpdateRow{
				Maintained:   maintained,
				Round:        round,
				Strategy:     strategy,
				Pairs:        res.Count,
				HintHitRate:  hintRate,
				EstErrPct:    -1,
				TimeSkew:     res.TimeSkew(s.model, ParallelPageSize),
				CatalogWalks: dWalksR + dWalksT,
				WalkedPages:  int64(dWalksR)*pagesR + int64(dWalksT)*pagesT,
			}
			for _, n := range res.WorkerTasks {
				row.Tasks += n
			}
			for _, n := range res.WorkerSteals {
				row.Steals += n
			}
			if strategy == join.PartitionLPT || strategy == join.PartitionSpatial {
				if err, ok := MeanEstErrPct(s.model, res, ParallelPageSize); ok {
					row.EstErrPct = err
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// PrintTableUpdates writes the update-workload rows, grouped by maintenance
// mode and round.
func PrintTableUpdates(w io.Writer, rows []UpdateRow) {
	writeHeader(w, fmt.Sprintf(
		"Update-heavy workload (SJ4, %d workers, %d%% turnover per round): catalog maintenance vs recollection",
		UpdateWorkers, UpdateBatchPercent))
	fmt.Fprintf(w, "%-11s %-6s %-12s %6s %8s %9s %10s %10s %7s %6s %12s\n",
		"catalog", "round", "strategy", "tasks", "pairs", "hint rate", "est err %", "time skew",
		"steals", "walks", "walked pages")
	lastMode := true
	for i, row := range rows {
		if i > 0 && row.Maintained != lastMode {
			fmt.Fprintln(w)
		}
		lastMode = row.Maintained
		mode := "maintained"
		if !row.Maintained {
			mode = "recollect"
		}
		estErr := "-"
		if row.EstErrPct >= 0 {
			estErr = fmt.Sprintf("%.1f", row.EstErrPct)
		}
		fmt.Fprintf(w, "%-11s %-6d %-12s %6d %8d %9.2f %10s %10.2f %7d %6d %12d\n",
			mode, row.Round, row.Strategy, row.Tasks, row.Pairs, row.HintHitRate,
			estErr, row.TimeSkew, row.Steals, row.CatalogWalks, row.WalkedPages)
	}
	fmt.Fprintln(w, "(each round deletes the oldest batch and Hilbert-buffer-inserts a fresh one on"+
		"\n both relations, then joins with every partition strategy; hint rate = share of"+
		"\n buffered inserts that skipped the ChooseSubtree descent; est err = mean per-"+
		"\n worker |predicted-actual|/actual for the estimate-driven static schedules;"+
		"\n walks = full-tree statistics recollections during planning — the stall the"+
		"\n incremental catalog maintenance eliminates)")
}
