package experiments

import (
	"strings"
	"testing"
)

// TestServerTortureHarness is the acceptance property of the concurrent join
// server: an open-loop churn+query workload under scripted flaky reads, a
// dead disk, failing fsyncs and a mid-round power cut must answer every
// admitted query with a result bit-identical to the sequential model or a
// clean typed error — never a hang, never a torn snapshot — and recover to
// the last committed round after every destructive phase.
func TestServerTortureHarness(t *testing.T) {
	cfg := ServerTortureConfig{}
	if testing.Short() {
		cfg = ServerTortureConfig{Items: 200, SItems: 150, Waves: 2, QueriesPerWave: 6, ChurnPerRound: 25}
	}
	report := RunServerTorture(cfg)
	for _, f := range report.Failures {
		t.Errorf("%s", f)
	}
	if report.GoroutinesLeaked > 0 {
		t.Errorf("%d goroutines leaked past shutdown", report.GoroutinesLeaked)
	}
	if len(report.Phases) != 6 {
		t.Fatalf("ran %d phases, want 6", len(report.Phases))
	}
	byName := map[string]ServerPhaseResult{}
	for _, p := range report.Phases {
		byName[p.Name] = p
	}
	for _, name := range []string{"clean", "flaky-reads"} {
		p := byName[name]
		if p.Done == 0 || p.Done != p.Queries-p.Shed {
			t.Errorf("%s: done=%d queries=%d shed=%d, want every admitted query verified",
				name, p.Done, p.Queries, p.Shed)
		}
		if p.Rounds == 0 {
			t.Errorf("%s: no churn round committed", name)
		}
	}
	if p := byName["transient-read"]; p.Retried == 0 {
		t.Errorf("transient-read: retry path not exercised")
	}
	for _, name := range []string{"dead-reads", "sync-fail", "power-cut"} {
		p := byName[name]
		if p.Broken == 0 {
			t.Errorf("%s: no query observed ErrServerBroken", name)
		}
		if p.Recovery == 0 {
			t.Errorf("%s: recovery time not recorded", name)
		}
	}
	if report.Verified == 0 {
		t.Errorf("no query result was verified against the model")
	}

	var sb strings.Builder
	PrintServerReport(&sb, report)
	if !strings.Contains(sb.String(), "no violations") {
		t.Errorf("report did not declare a clean run:\n%s", sb.String())
	}
	t.Logf("\n%s", sb.String())
}
