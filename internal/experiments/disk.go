package experiments

import (
	"fmt"
	"io"
	"path"

	"repro/internal/datagen"
	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Measured disk I/O (robustness extension): the joins and the update workload
// run against trees persisted in the durable pager, so every counted page
// access is also a physical page read.  The tables put the measured numbers
// next to the counted ones — if the simulation's cost model is honest, the
// two read columns must agree exactly.
// ---------------------------------------------------------------------------

// DiskPageSize is the page size of the disk experiments: the paper's
// smallest, so the runs touch the most pages.
const DiskPageSize = storage.PageSize1K

// DiskIORow is one cold-cache join from disk: counted I/O from the
// simulation next to measured I/O from the pager, for one method and buffer
// size.
type DiskIORow struct {
	Method   join.Method
	BufferKB int
	Pairs    int
	// CountedReads is the simulation's disk-read count (LRU misses).
	CountedReads int64
	// MeasuredReads is how many page frames the pager actually read from the
	// file during the join; it must equal CountedReads — every counted miss
	// performs exactly one physical read.
	MeasuredReads int64
	// MeasuredBytes is the frame bytes that left the file (frames carry an
	// 8-byte checksum header on top of the page payload).
	MeasuredBytes int64
	// ReadMicros is the wall time spent inside physical reads, in
	// microseconds.
	ReadMicros int64
}

// DiskUpdateRow is one turnover round committed to disk: the incremental
// commit's page economy, the WAL traffic it cost, and the verification join
// that ran from the updated file.
type DiskUpdateRow struct {
	Round         int
	PagesWritten  int
	PagesClean    int
	PagesFreed    int
	PagesReused   int64 // allocations served from the pager free list this round
	WALBytes      int64
	CommitMicros  int64
	Pairs         int
	CountedReads  int64
	MeasuredReads int64
}

// mustClose closes a pager and panics on failure: an experiment table is
// only trustworthy if its store shut down cleanly, and the Close error
// latches any commit the pager could not make durable.
func mustClose(p *storage.Pager) {
	if err := p.Close(); err != nil {
		panic(fmt.Sprintf("experiments: closing pager: %v", err))
	}
}

// persistTree saves a copy of the items into a fresh pager-backed tree store
// on fs and commits it.  It returns the store (whose tree carries the
// committed state).
func persistTree(fs storage.VFS, file string, pageSize int, items []rtree.Item) (*rtree.TreeStore, error) {
	pager, err := storage.OpenPager(fs, file, pageSize, storage.PagerOptions{})
	if err != nil {
		return nil, err
	}
	tree := rtree.MustNew(rtree.Options{PageSize: pageSize})
	tree.InsertItems(items)
	ts, err := rtree.NewTreeStore(tree, pager)
	if err != nil {
		return nil, err
	}
	if _, err := ts.Commit(); err != nil {
		return nil, err
	}
	if err := pager.Checkpoint(); err != nil {
		return nil, err
	}
	return ts, nil
}

// TableDiskIO persists the main experiment pair (streets R, rivers S) into
// two pagers on fs and runs every join method cold (fresh LRU buffer, every
// counted miss a physical page read) for each configured buffer size.  dir
// names the directory the page files are created in ("" for a VFS without
// directories).
func (s *Suite) TableDiskIO(fs storage.VFS, dir string) []DiskIORow {
	storeR, err := persistTree(fs, path.Join(dir, "streets.db"), DiskPageSize, s.streets())
	if err != nil {
		panic(fmt.Sprintf("experiments: persisting R: %v", err))
	}
	storeS, err := persistTree(fs, path.Join(dir, "rivers.db"), DiskPageSize, s.rivers())
	if err != nil {
		panic(fmt.Sprintf("experiments: persisting S: %v", err))
	}
	defer mustClose(storeR.Pager())
	defer mustClose(storeS.Pager())

	var rows []DiskIORow
	for _, bufferKB := range []int{0, 128} {
		for _, method := range join.Methods {
			beforeR, beforeS := storeR.Pager().Stats(), storeS.Pager().Stats()
			res := s.runJoin(storeR.Tree(), storeS.Tree(), method, bufferKB, func(o *join.Options) {
				o.PageReaderR = storeR
				o.PageReaderS = storeS
			})
			afterR, afterS := storeR.Pager().Stats(), storeS.Pager().Stats()
			rows = append(rows, DiskIORow{
				Method:        method,
				BufferKB:      bufferKB,
				Pairs:         res.Count,
				CountedReads:  res.Metrics.DiskReads,
				MeasuredReads: (afterR.Reads - beforeR.Reads) + (afterS.Reads - beforeS.Reads),
				MeasuredBytes: (afterR.BytesRead - beforeR.BytesRead) + (afterS.BytesRead - beforeS.BytesRead),
				ReadMicros:    ((afterR.ReadNanos - beforeR.ReadNanos) + (afterS.ReadNanos - beforeS.ReadNanos)) / 1000,
			})
		}
	}
	return rows
}

// TableDiskUpdates runs the update-heavy workload against the durable store:
// every turnover round is committed to the pager as one transaction (only
// changed pages written, dissolved pages freed and reused), then verified by
// an SJ4 join reading physically from the updated file.
func (s *Suite) TableDiskUpdates(fs storage.VFS, dir string) []DiskUpdateRow {
	storeR, err := persistTree(fs, path.Join(dir, "upd-streets.db"), DiskPageSize, s.streets())
	if err != nil {
		panic(fmt.Sprintf("experiments: persisting R: %v", err))
	}
	storeS, err := persistTree(fs, path.Join(dir, "upd-rivers.db"), DiskPageSize, s.rivers())
	if err != nil {
		panic(fmt.Sprintf("experiments: persisting S: %v", err))
	}
	defer mustClose(storeR.Pager())
	defer mustClose(storeS.Pager())

	u := &UpdatePair{
		Tree: storeR.Tree(),
		Live: append([]rtree.Item(nil), s.streets()...),
		Kind: datagen.Streets, Seed: 8101, NextID: 1 << 20,
	}
	var rows []DiskUpdateRow
	for round := 1; round <= UpdateRounds+2; round++ {
		u.TurnOver(round)
		before := storeR.Pager().Stats()
		stats, err := storeR.Commit()
		if err != nil {
			panic(fmt.Sprintf("experiments: disk update commit round %d: %v", round, err))
		}
		after := storeR.Pager().Stats()

		joinBeforeR, joinBeforeS := storeR.Pager().Stats(), storeS.Pager().Stats()
		res := s.runJoin(storeR.Tree(), storeS.Tree(), join.SJ4, 0, func(o *join.Options) {
			o.PageReaderR = storeR
			o.PageReaderS = storeS
		})
		joinAfterR, joinAfterS := storeR.Pager().Stats(), storeS.Pager().Stats()

		rows = append(rows, DiskUpdateRow{
			Round:        round,
			PagesWritten: stats.PagesWritten,
			PagesClean:   stats.PagesClean,
			PagesFreed:   stats.PagesFreed,
			PagesReused:  after.ReuseAllocations - before.ReuseAllocations,
			WALBytes:     after.WALBytes - before.WALBytes,
			CommitMicros: (after.CommitNanos - before.CommitNanos) / 1000,
			Pairs:        res.Count,
			CountedReads: res.Metrics.DiskReads,
			MeasuredReads: (joinAfterR.Reads - joinBeforeR.Reads) +
				(joinAfterS.Reads - joinBeforeS.Reads),
		})
	}
	return rows
}

// PrintTableDiskIO writes the measured-vs-counted join table.
func PrintTableDiskIO(w io.Writer, rows []DiskIORow) {
	writeHeader(w, fmt.Sprintf("Cold-cache joins from disk (page size %d): counted vs measured I/O", DiskPageSize))
	fmt.Fprintf(w, "%-14s %-9s %9s %13s %14s %14s %11s\n",
		"method", "buffer", "pairs", "counted reads", "measured reads", "measured bytes", "read µs")
	lastBuf := -1
	for _, row := range rows {
		if lastBuf >= 0 && row.BufferKB != lastBuf {
			fmt.Fprintln(w)
		}
		lastBuf = row.BufferKB
		fmt.Fprintf(w, "%-14s %-9s %9d %13d %14d %14d %11d\n",
			row.Method, fmt.Sprintf("%d KB", row.BufferKB), row.Pairs,
			row.CountedReads, row.MeasuredReads, row.MeasuredBytes, row.ReadMicros)
	}
	fmt.Fprintln(w, "(trees persisted in the crash-safe pager; the join's LRU starts cold, and every"+
		"\n counted miss performs one physical checksum-verified frame read — the counted"+
		"\n and measured read columns must agree exactly)")
}

// PrintTableDiskUpdates writes the durable update-workload table.
func PrintTableDiskUpdates(w io.Writer, rows []DiskUpdateRow) {
	writeHeader(w, fmt.Sprintf(
		"Durable update rounds (page size %d, %d%% turnover): incremental commit + verification join",
		DiskPageSize, UpdateBatchPercent))
	fmt.Fprintf(w, "%-6s %8s %7s %6s %7s %10s %10s %8s %9s %9s\n",
		"round", "written", "clean", "freed", "reused", "WAL bytes", "commit µs", "pairs", "counted", "measured")
	for _, row := range rows {
		fmt.Fprintf(w, "%-6d %8d %7d %6d %7d %10d %10d %8d %9d %9d\n",
			row.Round, row.PagesWritten, row.PagesClean, row.PagesFreed, row.PagesReused,
			row.WALBytes, row.CommitMicros, row.Pairs, row.CountedReads, row.MeasuredReads)
	}
	fmt.Fprintln(w, "(each round deletes the oldest tenth and Hilbert-buffer-inserts a fresh batch,"+
		"\n then commits: only pages whose bytes changed are written, dissolved nodes'"+
		"\n pages are freed and reused by later rounds; the SJ4 join then reads the"+
		"\n updated tree physically from the file)")
}
