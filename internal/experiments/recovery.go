package experiments

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"repro/internal/datagen"
	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Crash-recovery property harness (robustness extension): the same
// insert/delete/join workload is replayed with a power cut injected at every
// file operation, and after each cut the pager must recover to a committed
// tree whose SJ1–SJ5 join results are bit-identical to what the clean run
// recorded for that commit.
// ---------------------------------------------------------------------------

// RecoveryConfig parameterises the harness.  The zero value is usable: it
// runs the default workload and crashes at every file operation.
type RecoveryConfig struct {
	// Items is the cardinality of the mutated relation R (default 600).
	Items int
	// SItems is the cardinality of the static relation S (default 400).
	SItems int
	// Rounds is the number of turnover rounds, each deleting the oldest tenth
	// of R and re-inserting as many fresh rectangles through the Hilbert
	// insertion buffer, followed by a commit (default 8).
	Rounds int
	// PageSize is the page size of tree and pager (default 1K, the paper's
	// smallest: most pages, most crash points).
	PageSize int
	// Seed seeds the workload (default 42).
	Seed int64
	// CheckpointEvery is the pager's auto-checkpoint cadence (default 3, so
	// the enumeration crosses several full checkpoint cycles).
	CheckpointEvery int
	// Stride enumerates every Stride-th file operation as a crash point
	// (default 1: every operation).  The -short tests use a larger stride.
	Stride int
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.Items <= 0 {
		c.Items = 600
	}
	if c.SItems <= 0 {
		c.SItems = 400
	}
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.PageSize <= 0 {
		c.PageSize = storage.PageSize1K
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 3
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
	return c
}

// RecoveryReport is the outcome of one harness run.
type RecoveryReport struct {
	// Commits is the number of transactions the clean run committed.
	Commits int
	// TotalOps is the number of file operations of the clean run — the size
	// of the crash-point space.
	TotalOps int64
	// CrashPoints is how many injected-crash iterations ran.
	CrashPoints int
	// Recovered is how many of them recovered to a validated tree with
	// bit-identical join results; a correct pager recovers all of them.
	Recovered int
	// EmptyRecoveries counts crash points early enough that no commit was
	// durable yet (the pager legitimately recovers to an empty file).
	EmptyRecoveries int
	// ReplayedTxns sums the WAL transactions replayed across all recoveries.
	ReplayedTxns int64
	// Failures lists what went wrong, one line per failed crash point (empty
	// on success).
	Failures []string
}

// Ok reports whether every crash point recovered correctly.
func (r *RecoveryReport) Ok() bool { return len(r.Failures) == 0 }

// recoveryCheckpoint is what the clean run records after each commit: the
// pager sequence number, the file-operation count at which the commit had
// returned (everything at or below it must survive any later crash), and the
// canonical hash of every join method's result set at that commit.
type recoveryCheckpoint struct {
	seq    uint64
	opsEnd int64
	hashes [5]uint64
}

// recoveryWorkload drives the deterministic mutation script.  Every decision
// is derived from the config seed alone — never from I/O outcomes — so the
// clean run and every crash run execute the identical operation sequence up
// to the cut.
type recoveryWorkload struct {
	cfg    RecoveryConfig
	rItems []rtree.Item
	sTree  *rtree.Tree
}

func newRecoveryWorkload(cfg RecoveryConfig) *recoveryWorkload {
	w := &recoveryWorkload{cfg: cfg}
	w.rItems = datagen.Generate(datagen.Config{
		Kind: datagen.Streets, Count: cfg.Items, Seed: cfg.Seed,
	})
	sItems := datagen.Generate(datagen.Config{
		Kind: datagen.Rivers, Count: cfg.SItems, Seed: cfg.Seed + 1,
	})
	w.sTree = rtree.MustNew(rtree.Options{PageSize: cfg.PageSize})
	w.sTree.InsertItems(sItems)
	return w
}

// joinHashes joins r against the static S with every method and returns one
// canonical (sorted, FNV-1a) hash per method.
func (w *recoveryWorkload) joinHashes(r *rtree.Tree) [5]uint64 {
	var hashes [5]uint64
	for i, method := range join.Methods {
		res, err := join.Join(r, w.sTree, join.Options{Method: method})
		if err != nil {
			panic(fmt.Sprintf("experiments: recovery join %v: %v", method, err))
		}
		join.SortPairs(res.Pairs)
		h := fnv.New64a()
		var buf [8]byte
		for _, p := range res.Pairs {
			buf[0] = byte(p.R)
			buf[1] = byte(p.R >> 8)
			buf[2] = byte(p.R >> 16)
			buf[3] = byte(p.R >> 24)
			buf[4] = byte(p.S)
			buf[5] = byte(p.S >> 8)
			buf[6] = byte(p.S >> 16)
			buf[7] = byte(p.S >> 24)
			h.Write(buf[:])
		}
		hashes[i] = h.Sum64()
	}
	return hashes
}

// run executes the workload against a pager on fs: build R, commit, then
// Rounds× (turn over a tenth, commit).  After every commit that returns,
// record is called with the committed tree.  The first error aborts the run
// (in a crash iteration that error is the injected cut); the caller decides
// what it means.
func (w *recoveryWorkload) run(fs storage.VFS, record func(seq uint64, tree *rtree.Tree)) error {
	pager, err := storage.OpenPager(fs, "r.db", w.cfg.PageSize, storage.PagerOptions{
		CheckpointEvery: w.cfg.CheckpointEvery,
		Sleep:           func(time.Duration) {},
	})
	if err != nil {
		return err
	}
	tree := rtree.MustNew(rtree.Options{PageSize: w.cfg.PageSize})
	tree.InsertItems(w.rItems)
	ts, err := rtree.NewTreeStore(tree, pager)
	if err != nil {
		return err
	}
	commit := func() error {
		stats, err := ts.Commit()
		if err != nil {
			return err
		}
		if record != nil {
			record(stats.Seq, tree)
		}
		return nil
	}
	if err := commit(); err != nil {
		return err
	}

	live := append([]rtree.Item(nil), w.rItems...)
	nextID := int32(1 << 20)
	for round := 1; round <= w.cfg.Rounds; round++ {
		batch := len(live) / 10
		if batch < 1 {
			batch = 1
		}
		for _, it := range live[:batch] {
			if !tree.Delete(it.Rect, it.Data) {
				return fmt.Errorf("experiments: recovery delete of item %d failed", it.Data)
			}
		}
		live = live[batch:]
		fresh := datagen.Generate(datagen.Config{
			Kind: datagen.Streets, Count: batch, Seed: w.cfg.Seed + 100 + int64(round),
		})
		buf := rtree.NewInsertBuffer(tree, batch)
		for _, it := range fresh {
			it.Data = nextID
			nextID++
			buf.Stage(it.Rect, it.Data)
			live = append(live, it)
		}
		buf.Flush()
		if err := commit(); err != nil {
			return err
		}
	}
	return nil
}

// RunRecoveryHarness enumerates a power cut at every Stride-th file operation
// of the workload and verifies that each cut recovers to a committed,
// structurally valid tree whose SJ1–SJ5 results are bit-identical to the
// clean run's record for that commit, and whose durability covers every
// commit that had returned before the cut.
func RunRecoveryHarness(cfg RecoveryConfig) *RecoveryReport {
	cfg = cfg.withDefaults()
	w := newRecoveryWorkload(cfg)
	report := &RecoveryReport{}

	// Clean run: instrumented through a fault-free FaultFS so the recorded
	// operation counts align with the crash runs below.
	cleanFS := storage.NewFaultFS(storage.NewMemVFS(), storage.FaultScript{})
	var checkpoints []recoveryCheckpoint
	err := w.run(cleanFS, func(seq uint64, tree *rtree.Tree) {
		checkpoints = append(checkpoints, recoveryCheckpoint{
			seq:    seq,
			opsEnd: cleanFS.Ops(),
			hashes: w.joinHashes(tree),
		})
	})
	if err != nil {
		report.Failures = append(report.Failures, fmt.Sprintf("clean run failed: %v", err))
		return report
	}
	report.Commits = len(checkpoints)
	report.TotalOps = cleanFS.Ops()
	bySeq := make(map[uint64]recoveryCheckpoint, len(checkpoints))
	for _, c := range checkpoints {
		bySeq[c.seq] = c
	}

	for op := int64(1); op <= report.TotalOps; op += int64(cfg.Stride) {
		report.CrashPoints++
		if msg := w.crashAt(op, bySeq, report); msg != "" {
			report.Failures = append(report.Failures, fmt.Sprintf("crash at op %d: %s", op, msg))
		} else {
			report.Recovered++
		}
	}
	return report
}

// crashAt replays the workload with a power cut at the given operation,
// recovers from the surviving disk image and verifies the recovered state.
// It returns "" on success and a description of the violation otherwise.
func (w *recoveryWorkload) crashAt(op int64, bySeq map[uint64]recoveryCheckpoint, report *RecoveryReport) string {
	faultFS := storage.NewFaultFS(storage.NewMemVFS(), storage.FaultScript{
		CrashAtOp: op,
		TornSeed:  w.cfg.Seed * 7,
	})
	// The committed prefix every later state must dominate: the highest
	// sequence number whose commit had fully returned before the cut.
	var lastDurable uint64
	err := w.run(faultFS, func(seq uint64, tree *rtree.Tree) {
		lastDurable = seq
	})
	if err == nil {
		// The cut fired after the workload finished (tail operations of the
		// final checkpoint); recovery must still see the final commit.
	} else if !errors.Is(err, storage.ErrInjectedCrash) && !errors.Is(err, storage.ErrPagerBroken) {
		return fmt.Sprintf("workload failed with a non-crash error: %v", err)
	}
	if !faultFS.Crashed() {
		// The cut lies beyond the workload's operations; nothing to test.
		faultFS.Base().Crash(w.cfg.Seed * 13)
	}

	// Recover from the durable image the cut left behind.
	pager, err := storage.OpenPager(faultFS.Base(), "r.db", w.cfg.PageSize, storage.PagerOptions{
		CheckpointEvery: w.cfg.CheckpointEvery,
		Sleep:           func(time.Duration) {},
	})
	if err != nil {
		return fmt.Sprintf("recovery open failed: %v", err)
	}
	defer mustClose(pager)
	report.ReplayedTxns += pager.Stats().RecoveredTxns

	seq := pager.Seq()
	if seq < lastDurable {
		return fmt.Sprintf("recovered to seq %d, but commit %d had returned before the cut", seq, lastDurable)
	}
	if seq == 0 {
		if lastDurable > 0 {
			return fmt.Sprintf("recovered empty, but commit %d had returned before the cut", lastDurable)
		}
		report.EmptyRecoveries++
		return ""
	}
	want, ok := bySeq[seq]
	if !ok {
		return fmt.Sprintf("recovered to seq %d, which the clean run never committed", seq)
	}
	ts, err := rtree.OpenTreeStore(pager, rtree.Options{PageSize: w.cfg.PageSize})
	if err != nil {
		return fmt.Sprintf("loading recovered tree at seq %d: %v", seq, err)
	}
	if err := ts.Tree().CheckInvariants(); err != nil {
		return fmt.Sprintf("recovered tree at seq %d invalid: %v", seq, err)
	}
	if got := w.joinHashes(ts.Tree()); got != want.hashes {
		return fmt.Sprintf("join results at seq %d differ from the clean run (got %x, want %x)",
			seq, got, want.hashes)
	}
	return ""
}

// PrintRecoveryReport writes the harness outcome.
func PrintRecoveryReport(w io.Writer, r *RecoveryReport) {
	writeHeader(w, "Crash-recovery property harness (power cut at every file operation)")
	fmt.Fprintf(w, "%-28s %d\n", "commits (clean run)", r.Commits)
	fmt.Fprintf(w, "%-28s %d\n", "file operations", r.TotalOps)
	fmt.Fprintf(w, "%-28s %d\n", "injected crash points", r.CrashPoints)
	fmt.Fprintf(w, "%-28s %d\n", "recovered + verified", r.Recovered)
	fmt.Fprintf(w, "%-28s %d\n", "empty recoveries", r.EmptyRecoveries)
	fmt.Fprintf(w, "%-28s %d\n", "WAL transactions replayed", r.ReplayedTxns)
	if r.Ok() {
		fmt.Fprintln(w, "every crash point recovered to a committed tree with bit-identical SJ1-SJ5 results")
		return
	}
	fmt.Fprintf(w, "%d FAILURES:\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  %s\n", f)
	}
}
