package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// ---------------------------------------------------------------------------
// Predicate suite (extension): the three join predicates — intersection,
// within-distance and kNN — run through the measured filter-and-refine
// pipeline on the paper's main pair (streets R, rivers S) with exact line
// geometries.  For each predicate the report separates, the way Section 5 of
// the paper does:
//
//   - the filter step's I/O (counted disk accesses) and CPU (counted MBR
//     comparisons), priced with the paper's cost model, and
//   - the refinement step's CPU (counted exact-geometry operations, priced
//     with the same comparison constant), together with the candidate-pair
//     count the filter produced and the exact-result count that survives
//     refinement.
//
// Every filter result is checked against an independent brute-force oracle,
// and SJ1..SJ5 plus the parallel join must all agree pairwise.  The suite
// also closes ROADMAP 5(b): the same predicate workload is run on trees
// built by plain insertion and by Hilbert-buffered insertion, pinning that
// the buffered build's speedup costs nothing downstream.
// ---------------------------------------------------------------------------

// PredicateBenchConfig parameterises the suite.  The zero value runs the
// default workload at Scale 1.0.
type PredicateBenchConfig struct {
	// Scale multiplies the paper cardinalities (default 1.0).
	Scale float64
	// PageSize is the tree page size (default 4K).
	PageSize int
	// Epsilon is the within-distance radius (default 0.0025, about 2.5x a
	// street MBR's side in the unit-square world).
	Epsilon float64
	// K is the kNN neighbour count (default 4).
	K int
	// Workers is the parallel worker count of the cross-check join
	// (default 4).
	Workers int
}

func (c PredicateBenchConfig) withDefaults() PredicateBenchConfig {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.PageSize <= 0 {
		c.PageSize = storage.PageSize4K
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.0025
	}
	if c.K <= 0 {
		c.K = 4
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	return c
}

// PredicateRow is the filter-and-refine measurement of one predicate.
type PredicateRow struct {
	// Predicate is the textual form ("intersects", "within:EPS", "knn:K").
	Predicate string
	// Candidates is the candidate-pair count out of the filter step;
	// Exact is the result count after exact-geometry refinement.
	Candidates, Exact int
	// FilterIO is the filter step's counted disk accesses, FilterComps its
	// counted MBR comparisons.
	FilterIO, FilterComps int64
	// FilterIOSeconds / FilterCPUSeconds price the filter counters with the
	// paper's cost model.
	FilterIOSeconds, FilterCPUSeconds float64
	// RefineOps is the refinement step's counted exact-geometry operations
	// and RefineSeconds their price under the same comparison constant.
	RefineOps     int64
	RefineSeconds float64
	// ParityOK: the filter pairs match the brute-force oracle, and SJ1..SJ5
	// and the parallel join agree.
	ParityOK bool
}

// BuildCompareRow is one predicate's downstream cost on plain-built vs
// buffered-built trees (ROADMAP 5(b)).
type BuildCompareRow struct {
	Predicate string
	// PlainIO/BufferedIO are counted disk accesses of the filter step on the
	// two tree pairs; PlainComps/BufferedComps the counted comparisons.
	PlainIO, BufferedIO       int64
	PlainComps, BufferedComps int64
	// PlainSeconds/BufferedSeconds are the cost-model totals.
	PlainSeconds, BufferedSeconds float64
	// Pairs must be identical on both tree pairs.
	Pairs int
}

// PredicateReport is the outcome of the whole suite.
type PredicateReport struct {
	Config PredicateBenchConfig
	// NR and NS are the generated cardinalities.
	NR, NS int
	Rows   []PredicateRow

	// BuildPlainWall / BuildBufferedWall are the build times of the R tree
	// by plain insertion vs Hilbert-buffered insertion; BuildSpeedup their
	// ratio.
	BuildPlainWall, BuildBufferedWall time.Duration
	BuildSpeedup                      float64
	BuildRows                         []BuildCompareRow
	// MaxDownstreamPenalty is the worst buffered/plain cost-model ratio over
	// the predicate suite — the "costs nothing downstream" number.
	MaxDownstreamPenalty float64

	Failures []string
}

// Ok reports whether every parity check passed.
func (r *PredicateReport) Ok() bool { return len(r.Failures) == 0 }

func (r *PredicateReport) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// predicateOracle computes the brute-force pair set of one predicate over
// the raw MBR items, independent of the trees and the join code.
func predicateOracle(rItems, sItems []rtree.Item, pred join.Predicate) []join.Pair {
	var out []join.Pair
	switch pred.Kind {
	case join.PredWithinDist:
		e2 := pred.Epsilon * pred.Epsilon
		for _, r := range rItems {
			for _, s := range sItems {
				if oracleRectDist2(r.Rect, s.Rect) <= e2 {
					out = append(out, join.Pair{R: r.Data, S: s.Data})
				}
			}
		}
	case join.PredKNN:
		for _, r := range rItems {
			type cand struct {
				d2  float64
				sID int32
			}
			best := make([]cand, 0, pred.K)
			worse := func(a, b cand) bool {
				if a.d2 != b.d2 {
					return a.d2 > b.d2
				}
				return a.sID > b.sID
			}
			for _, s := range sItems {
				c := cand{d2: oracleRectDist2(r.Rect, s.Rect), sID: s.Data}
				if len(best) < pred.K {
					best = append(best, c)
					sort.Slice(best, func(i, j int) bool { return worse(best[j], best[i]) })
					continue
				}
				if worse(best[len(best)-1], c) {
					best[len(best)-1] = c
					sort.Slice(best, func(i, j int) bool { return worse(best[j], best[i]) })
				}
			}
			for _, c := range best {
				out = append(out, join.Pair{R: r.Data, S: c.sID})
			}
		}
	default:
		for _, r := range rItems {
			for _, s := range sItems {
				if r.Rect.Intersects(s.Rect) {
					out = append(out, join.Pair{R: r.Data, S: s.Data})
				}
			}
		}
	}
	join.SortPairs(out)
	return out
}

func oracleRectDist2(a, b geom.Rect) float64 {
	dx := maxf(0, maxf(a.XL-b.XU, b.XL-a.XU))
	dy := maxf(0, maxf(a.YL-b.YU, b.YL-a.YU))
	return dx*dx + dy*dy
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func samePairSlices(a, b []join.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunPredicateBench runs the suite.
func RunPredicateBench(cfg PredicateBenchConfig) *PredicateReport {
	cfg = cfg.withDefaults()
	rep := &PredicateReport{Config: cfg}
	model := costmodel.Default()

	scaled := func(n int) int {
		v := int(float64(n) * cfg.Scale)
		if v < 100 {
			v = 100
		}
		return v
	}
	rItems := datagen.Generate(datagen.Config{Kind: datagen.Streets, Count: scaled(datagen.PaperStreetsCount), Seed: 101})
	sItems := datagen.Generate(datagen.Config{Kind: datagen.Rivers, Count: scaled(datagen.PaperRiversRailwaysCount), Seed: 202})
	rep.NR, rep.NS = len(rItems), len(sItems)

	opts := rtree.Options{PageSize: cfg.PageSize}
	relR, err := core.BuildRelation("streets", core.LineObjectsFromItems(rItems), opts, false)
	if err != nil {
		rep.failf("building R relation: %v", err)
		return rep
	}
	relS, err := core.BuildRelation("rivers", core.LineObjectsFromItems(sItems), opts, false)
	if err != nil {
		rep.failf("building S relation: %v", err)
		return rep
	}

	preds := []join.Predicate{
		join.Intersects(),
		join.WithinDistance(cfg.Epsilon),
		join.NearestNeighbors(cfg.K),
	}
	for _, pred := range preds {
		oracle := predicateOracle(rItems, sItems, pred)

		// The measured run: SJ4 filter plus exact-geometry refinement.
		res, err := core.SpatialJoin(relR, relS, core.JoinOptions{
			Type:   core.IDJoin,
			Filter: join.Options{Method: join.SJ4, Predicate: pred, UsePathBuffer: true},
		})
		if err != nil {
			rep.failf("%s: SpatialJoin: %v", pred, err)
			continue
		}
		row := PredicateRow{
			Predicate:        pred.String(),
			Candidates:       res.FilterPairs,
			Exact:            len(res.Pairs),
			FilterIO:         res.Metrics.DiskAccesses(),
			FilterComps:      res.Metrics.TotalComparisons(),
			FilterIOSeconds:  res.Estimate.IOSeconds,
			FilterCPUSeconds: res.Estimate.CPUSeconds,
			RefineOps:        res.RefineOps,
			RefineSeconds:    res.RefineSeconds,
			ParityOK:         true,
		}

		// Filter parity: every sequential method and the parallel join must
		// match the brute-force oracle bit for bit.
		for _, m := range []join.Method{join.SJ1, join.SJ2, join.SJ3, join.SJ4, join.SJ5} {
			fres, err := join.Join(relR.Tree(), relS.Tree(), join.Options{Method: m, Predicate: pred, UsePathBuffer: true})
			if err != nil {
				rep.failf("%s: %v filter: %v", pred, m, err)
				row.ParityOK = false
				continue
			}
			join.SortPairs(fres.Pairs)
			if !samePairSlices(fres.Pairs, oracle) {
				rep.failf("%s: %v filter pairs diverge from oracle (%d vs %d)", pred, m, len(fres.Pairs), len(oracle))
				row.ParityOK = false
			}
		}
		pres, err := join.ParallelJoin(relR.Tree(), relS.Tree(), join.ParallelOptions{
			Options: join.Options{Method: join.SJ4, Predicate: pred, UsePathBuffer: true},
			Workers: cfg.Workers,
		})
		if err != nil {
			rep.failf("%s: parallel filter: %v", pred, err)
			row.ParityOK = false
		} else {
			join.SortPairs(pres.Pairs)
			if !samePairSlices(pres.Pairs, oracle) {
				rep.failf("%s: parallel filter pairs diverge from oracle", pred)
				row.ParityOK = false
			}
		}
		rep.Rows = append(rep.Rows, row)
	}

	runBuildCompare(rep, rItems, sItems, preds, model)
	return rep
}

// runBuildCompare closes ROADMAP 5(b): same predicate workload on plain-built
// vs Hilbert-buffered-built trees.
func runBuildCompare(rep *PredicateReport, rItems, sItems []rtree.Item, preds []join.Predicate, model costmodel.Model) {
	cfg := rep.Config
	opts := rtree.Options{PageSize: cfg.PageSize}

	start := time.Now()
	plainR, err := rtree.Build(opts, rItems, false)
	rep.BuildPlainWall = time.Since(start)
	if err != nil {
		rep.failf("plain build: %v", err)
		return
	}
	start = time.Now()
	bufR, err := rtree.BuildBuffered(opts, rItems)
	rep.BuildBufferedWall = time.Since(start)
	if err != nil {
		rep.failf("buffered build: %v", err)
		return
	}
	if rep.BuildBufferedWall > 0 {
		rep.BuildSpeedup = float64(rep.BuildPlainWall) / float64(rep.BuildBufferedWall)
	}
	plainS, err := rtree.Build(opts, sItems, false)
	if err != nil {
		rep.failf("plain build S: %v", err)
		return
	}
	bufS, err := rtree.BuildBuffered(opts, sItems)
	if err != nil {
		rep.failf("buffered build S: %v", err)
		return
	}

	for _, pred := range preds {
		run := func(r, s *rtree.Tree) (*join.Result, error) {
			return join.Join(r, s, join.Options{Method: join.SJ4, Predicate: pred, UsePathBuffer: true})
		}
		pr, err := run(plainR, plainS)
		if err != nil {
			rep.failf("%s on plain trees: %v", pred, err)
			continue
		}
		br, err := run(bufR, bufS)
		if err != nil {
			rep.failf("%s on buffered trees: %v", pred, err)
			continue
		}
		join.SortPairs(pr.Pairs)
		join.SortPairs(br.Pairs)
		if !samePairSlices(pr.Pairs, br.Pairs) {
			rep.failf("%s: plain and buffered trees disagree on the result", pred)
		}
		pe := model.Estimate(pr.Metrics.DiskAccesses(), cfg.PageSize, pr.Metrics.TotalComparisons())
		be := model.Estimate(br.Metrics.DiskAccesses(), cfg.PageSize, br.Metrics.TotalComparisons())
		rep.BuildRows = append(rep.BuildRows, BuildCompareRow{
			Predicate:       pred.String(),
			PlainIO:         pr.Metrics.DiskAccesses(),
			BufferedIO:      br.Metrics.DiskAccesses(),
			PlainComps:      pr.Metrics.TotalComparisons(),
			BufferedComps:   br.Metrics.TotalComparisons(),
			PlainSeconds:    pe.TotalSeconds(),
			BufferedSeconds: be.TotalSeconds(),
			Pairs:           len(pr.Pairs),
		})
		if pe.TotalSeconds() > 0 {
			if ratio := be.TotalSeconds() / pe.TotalSeconds(); ratio > rep.MaxDownstreamPenalty {
				rep.MaxDownstreamPenalty = ratio
			}
		}
	}
}

// PrintPredicateReport renders the report.
func PrintPredicateReport(w io.Writer, rep *PredicateReport) {
	writeHeader(w, "Predicate suite: filter-and-refine on streets |R| x rivers |S|")
	fmt.Fprintf(w, "|R| = %d, |S| = %d, page %d bytes, eps = %g, k = %d\n\n",
		rep.NR, rep.NS, rep.Config.PageSize, rep.Config.Epsilon, rep.Config.K)
	fmt.Fprintf(w, "%-14s %10s %10s %10s %12s %10s %12s %12s %7s\n",
		"predicate", "candidates", "exact", "filter-IO", "filter-comps", "refine-ops", "filter-s", "refine-s", "parity")
	for _, r := range rep.Rows {
		parity := "OK"
		if !r.ParityOK {
			parity = "FAIL"
		}
		fmt.Fprintf(w, "%-14s %10d %10d %10d %12d %10d %12.3f %12.4f %7s\n",
			r.Predicate, r.Candidates, r.Exact, r.FilterIO, r.FilterComps, r.RefineOps,
			r.FilterIOSeconds+r.FilterCPUSeconds, r.RefineSeconds, parity)
	}
	fmt.Fprintf(w, "\nBuffered-built vs plain-built trees (ROADMAP 5(b)): build %v -> %v (%.2fx)\n",
		rep.BuildPlainWall.Round(time.Millisecond), rep.BuildBufferedWall.Round(time.Millisecond), rep.BuildSpeedup)
	fmt.Fprintf(w, "%-14s %10s %10s %12s %12s %10s %10s %8s\n",
		"predicate", "plain-IO", "buf-IO", "plain-comps", "buf-comps", "plain-s", "buf-s", "ratio")
	for _, r := range rep.BuildRows {
		ratio := 0.0
		if r.PlainSeconds > 0 {
			ratio = r.BufferedSeconds / r.PlainSeconds
		}
		fmt.Fprintf(w, "%-14s %10d %10d %12d %12d %10.3f %10.3f %8.3f\n",
			r.Predicate, r.PlainIO, r.BufferedIO, r.PlainComps, r.BufferedComps, r.PlainSeconds, r.BufferedSeconds, ratio)
	}
	fmt.Fprintf(w, "worst downstream cost ratio buffered/plain: %.3f\n", rep.MaxDownstreamPenalty)
	if len(rep.Failures) > 0 {
		fmt.Fprintf(w, "\nFAILURES (%d):\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Fprintf(w, "  - %s\n", f)
		}
	} else {
		fmt.Fprintln(w, "\nAll parity checks passed.")
	}
}
