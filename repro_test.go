package repro

import (
	"bytes"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end the way a downstream
// user would: generate data, build indexes, join them, refine the result and
// run a slice of the paper's experiments.

func TestFacadeTreeJoinWorkflow(t *testing.T) {
	streets := GenerateDataset(DatasetConfig{Kind: Streets, Count: 3000, Seed: 1})
	rivers := GenerateDataset(DatasetConfig{Kind: Rivers, Count: 3000, Seed: 2})

	r, err := BuildRTree(RTreeOptions{PageSize: PageSize1K}, streets, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildRTree(RTreeOptions{PageSize: PageSize1K}, rivers, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(streets) || s.Len() != len(rivers) {
		t.Fatalf("tree sizes %d/%d", r.Len(), s.Len())
	}

	var want int
	for _, a := range streets {
		for _, b := range rivers {
			if a.Rect.Intersects(b.Rect) {
				want++
			}
		}
	}
	for _, method := range []JoinMethod{SpatialJoin1, SpatialJoin4} {
		res, err := TreeJoin(r, s, JoinOptions{Method: method, BufferBytes: 128 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("%v found %d pairs, want %d", method, res.Count, want)
		}
	}
}

func TestFacadeStealingJoinAndCatalogStats(t *testing.T) {
	streets := GenerateDataset(DatasetConfig{Kind: Streets, Count: 3000, Seed: 6})
	rivers := GenerateDataset(DatasetConfig{Kind: Rivers, Count: 3000, Seed: 7})
	r, err := BuildRTree(RTreeOptions{PageSize: PageSize1K}, streets, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildRTree(RTreeOptions{PageSize: PageSize1K}, rivers, true)
	if err != nil {
		t.Fatal(err)
	}

	var cat TreeCatalog = r.CatalogStats()
	if !cat.Valid() || cat.DataEntries() != int64(len(streets)) {
		t.Fatalf("catalog stats invalid: %+v", cat)
	}

	seq, err := TreeJoin(r, s, JoinOptions{Method: SpatialJoin4, BufferBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelTreeJoin(r, s, ParallelJoinOptions{
		Options:           JoinOptions{Method: SpatialJoin4, BufferBytes: 128 << 10},
		Workers:           4,
		Strategy:          StealingPartition,
		MinTasksPerWorker: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Count != seq.Count {
		t.Fatalf("stealing join found %d pairs, sequential %d", par.Count, seq.Count)
	}
	SortJoinPairs(par.Pairs)
	SortJoinPairs(seq.Pairs)
	for i := range seq.Pairs {
		if par.Pairs[i] != seq.Pairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, par.Pairs[i], seq.Pairs[i])
		}
	}
	if len(par.WorkerSteals) != len(par.WorkerMetrics) {
		t.Fatalf("WorkerSteals has %d entries for %d workers", len(par.WorkerSteals), len(par.WorkerMetrics))
	}
	for w, rate := range par.WorkerBufferHitRates() {
		if rate != rate || rate < 0 || rate > 1 {
			t.Fatalf("worker %d hit rate %v outside [0,1]", w, rate)
		}
	}
}

func TestFacadeBufferedInsertion(t *testing.T) {
	items := GenerateDataset(DatasetConfig{Kind: Streets, Count: 3000, Seed: 12})
	buffered, err := BuildRTreeBuffered(RTreeOptions{PageSize: PageSize1K}, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := buffered.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if buffered.Len() != len(items) {
		t.Fatalf("buffered build holds %d entries, want %d", buffered.Len(), len(items))
	}
	// Streaming updates through an explicit buffer, interleaved with deletes.
	tr, err := NewRTree(RTreeOptions{PageSize: PageSize1K})
	if err != nil {
		t.Fatal(err)
	}
	buf := NewRTreeInsertBuffer(tr, 256)
	for _, it := range items {
		buf.Stage(it.Rect, it.Data)
	}
	buf.Flush()
	for _, it := range items[:500] {
		if !tr.Delete(it.Rect, it.Data) {
			t.Fatalf("delete of %d failed", it.Data)
		}
	}
	if tr.Len() != len(items)-500 {
		t.Fatalf("tree holds %d entries after deletes, want %d", tr.Len(), len(items)-500)
	}
	// Incremental catalog maintenance keeps CatalogStats walk-free through
	// the whole update sequence.
	if cat := tr.CatalogStats(); !cat.Valid() || cat.DataEntries() != int64(tr.Len()) {
		t.Fatalf("catalog stats stale after updates: %+v", cat)
	}
	if walks := tr.CatalogRecollections(); walks != 0 {
		t.Fatalf("CatalogStats performed %d recollection walks, want 0", walks)
	}
}

func TestFacadeWindowQuery(t *testing.T) {
	items := GenerateDataset(DatasetConfig{Kind: Streets, Count: 2000, Seed: 3})
	tree, err := BuildRTree(RTreeOptions{PageSize: PageSize2K, Variant: RStar}, items, false)
	if err != nil {
		t.Fatal(err)
	}
	window := NewRect(0.3, 0.3, 0.5, 0.5)
	want := 0
	for _, it := range items {
		if it.Rect.Intersects(window) {
			want++
		}
	}
	got := 0
	tree.Search(window, func(e TreeEntry) bool { got++; return true })
	if got != want {
		t.Fatalf("window query returned %d results, want %d", got, want)
	}
}

func TestFacadeRelationJoin(t *testing.T) {
	streets := LineObjects(GenerateDataset(DatasetConfig{Kind: Streets, Count: 2000, Seed: 4}))
	rivers := LineObjects(GenerateDataset(DatasetConfig{Kind: Rivers, Count: 2000, Seed: 5}))

	r, err := BuildRelation("streets", streets, RTreeOptions{PageSize: PageSize1K}, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildRelation("rivers", rivers, RTreeOptions{PageSize: PageSize1K}, false)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := SpatialJoin(r, s, SpatialJoinOptions{
		Type:   MBRJoin,
		Filter: JoinOptions{Method: SpatialJoin4, BufferBytes: 128 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SpatialJoin(r, s, SpatialJoinOptions{
		Type:   IDJoin,
		Filter: JoinOptions{Method: SpatialJoin4, BufferBytes: 128 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Pairs) > len(filter.Pairs) {
		t.Fatalf("refinement added pairs: %d > %d", len(exact.Pairs), len(filter.Pairs))
	}
	if filter.Estimate.TotalSeconds() <= 0 {
		t.Fatal("missing cost estimate")
	}
	if filter.Metrics.DiskReads <= 0 {
		t.Fatal("missing I/O metrics")
	}
}

func TestFacadeCostModel(t *testing.T) {
	m := DefaultCostModel()
	e := m.Estimate(1000, PageSize1K, 1_000_000)
	if !e.IOBound() {
		t.Fatal("expected an I/O-bound estimate")
	}
}

func TestFacadeExperiments(t *testing.T) {
	suite := NewExperimentSuite(ExperimentConfig{
		Scale:         0.01,
		PageSizes:     []int{PageSize1K},
		BufferSizesKB: []int{0, 128},
	})
	rows := suite.Table1()
	if len(rows) != 1 || rows[0].M != 51 {
		t.Fatalf("Table1 = %+v", rows)
	}
	var buf bytes.Buffer
	RunAllExperiments(ExperimentConfig{
		Scale:         0.01,
		PageSizes:     []int{PageSize1K},
		BufferSizesKB: []int{128},
		BulkLoad:      true,
	}, &buf)
	if !strings.Contains(buf.String(), "Table 8") {
		t.Fatal("RunAllExperiments output incomplete")
	}
}

func TestFacadeHeightPolicyAndVariantConstants(t *testing.T) {
	// The exported constants must map onto the internal ones (compile-time
	// aliasing is checked implicitly; here we make sure they are distinct).
	if WindowPerPair == BatchedWindows || BatchedWindows == SweepOrder {
		t.Fatal("height policies must be distinct")
	}
	if RStar == Quadratic {
		t.Fatal("variants must be distinct")
	}
	if MBRJoin == IDJoin || IDJoin == ObjectJoin {
		t.Fatal("join types must be distinct")
	}
	if NestedLoopJoin == SpatialJoin1 {
		t.Fatal("join methods must be distinct")
	}
	if WorldRect().Area() != 1 {
		t.Fatal("world rect must be the unit square")
	}
}
