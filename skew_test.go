package repro

import (
	"fmt"
	"testing"
)

// TestLargeJoinVectorPackingSkew pins the ROADMAP 5(a) fix at size: packing
// the spatial/stealing regions on (io, cpu) cost vectors with a
// max-of-components objective must hold both the per-worker comparison skew
// and the per-worker time skew at or under 1.10 on the 120k-rect pair at 8
// workers.  The scalar-seconds packing it replaces left the comparison skew
// at ~1.15 here: the totals balanced, but one worker collected the
// comparison-heavy tasks while another absorbed the I/O.
func TestLargeJoinVectorPackingSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 120k-rect tree family in -short mode")
	}
	r, s := largeTreesForBench()
	model := DefaultCostModel()
	const maxSkew = 1.10
	for _, strategy := range []PartitionStrategy{SpatialPartition, StealingPartition} {
		t.Run(fmt.Sprintf("strategy=%v", strategy), func(t *testing.T) {
			res, err := ParallelTreeJoin(r, s, ParallelJoinOptions{
				Options: JoinOptions{
					Method:        SpatialJoin4,
					BufferBytes:   1 << 20,
					UsePathBuffer: true,
					DiscardPairs:  true,
				},
				Workers:           8,
				Strategy:          strategy,
				MinTasksPerWorker: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count == 0 {
				t.Fatal("empty result")
			}
			if skew := res.ComparisonSkew(); skew > maxSkew {
				t.Errorf("comparison skew %.4f exceeds %.2f", skew, maxSkew)
			}
			if skew := res.TimeSkew(model, r.PageSize()); skew > maxSkew {
				t.Errorf("time skew %.4f exceeds %.2f", skew, maxSkew)
			}
		})
	}
}
