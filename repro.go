// Package repro is a reproduction of "Efficient Processing of Spatial Joins
// Using R-trees" (Brinkhoff, Kriegel, Seeger; SIGMOD 1993) as a reusable Go
// library.
//
// It provides
//
//   - an R*-tree (and classic Guttman R-tree) spatial index over
//     two-dimensional rectangles with insertion, deletion, window queries,
//     bulk loading and persistence,
//   - the paper's spatial-join algorithms SpatialJoin1 through SpatialJoin5
//     (synchronized tree traversal, search-space restriction, plane-sweep
//     intersection test, read schedules with pinning and z-ordering) plus the
//     policies for trees of different heights,
//   - the cost model of the paper (floating-point comparisons, disk accesses
//     through a shared LRU buffer, estimated execution times),
//   - relations combining the filter step with an exact-geometry refinement
//     step (MBR-, ID- and object-spatial-joins),
//   - synthetic data generators standing in for the TIGER/Line and region
//     data sets, and
//   - an experiment suite that regenerates every table and figure of the
//     paper's evaluation.
//
// The top-level package is a thin facade; the implementation lives in the
// internal packages described in DESIGN.md.
package repro

import (
	"io"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Geometric primitives.
type (
	// Rect is an axis-aligned rectangle (the unit of the MBR-spatial-join).
	Rect = geom.Rect
	// Point is a location in the plane.
	Point = geom.Point
)

// NewRect returns the rectangle spanning the two corner points.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// WorldRect returns the unit square all synthetic data sets live in.
func WorldRect() Rect { return geom.WorldRect() }

// R-tree index.
type (
	// RTree is an R*-tree (or Guttman R-tree) over rectangles.
	RTree = rtree.Tree
	// RTreeOptions configures page size, variant and fill factors.
	RTreeOptions = rtree.Options
	// Item is one data rectangle with its object identifier.
	Item = rtree.Item
	// TreeEntry is one slot of a tree node; window queries report data
	// entries of this type.
	TreeEntry = rtree.Entry
	// TreeStats describes the structure of a tree (Table 1 of the paper).
	TreeStats = rtree.Stats
	// Variant selects the R-tree flavour.
	Variant = rtree.Variant
)

// R-tree variants.
const (
	RStar     = rtree.RStar
	Quadratic = rtree.Quadratic
)

// Page sizes studied by the paper.
const (
	PageSize1K = storage.PageSize1K
	PageSize2K = storage.PageSize2K
	PageSize4K = storage.PageSize4K
	PageSize8K = storage.PageSize8K
)

// NewRTree creates an empty tree.
func NewRTree(opts RTreeOptions) (*RTree, error) { return rtree.New(opts) }

// BuildRTree builds a tree from items, either by repeated insertion (the
// paper's method) or by STR bulk loading when bulk is true.
func BuildRTree(opts RTreeOptions, items []Item, bulk bool) (*RTree, error) {
	return rtree.Build(opts, items, bulk)
}

// RTreeInsertBuffer stages inserts for one tree and applies each batch in
// Hilbert order, seeding every insert from the previous insert's leaf so
// spatially consecutive rectangles skip the ChooseSubtree descent (the
// update-heavy construction path; see DESIGN.md).
type RTreeInsertBuffer = rtree.InsertBuffer

// NewRTreeInsertBuffer returns an insertion buffer over t that flushes
// automatically every capacity staged rectangles (capacity <= 0 selects the
// default batch size).
func NewRTreeInsertBuffer(t *RTree, capacity int) *RTreeInsertBuffer {
	return rtree.NewInsertBuffer(t, capacity)
}

// BuildRTreeBuffered builds a dynamically inserted tree through a Hilbert
// insertion buffer sized to the whole batch: same construction method as
// repeated insertion, measurably less ChooseSubtree work.
func BuildRTreeBuffered(opts RTreeOptions, items []Item) (*RTree, error) {
	return rtree.BuildBuffered(opts, items)
}

// Durable storage: the crash-safe pager and its virtual file system seam
// (checksummed page frames, redo WAL with group commit, free-list reuse;
// see DESIGN.md).
type (
	// Pager is a crash-safe on-disk page store: committed transactions
	// survive a power cut at any file operation.
	Pager = storage.Pager
	// PagerOptions configures read retries, backoff and checkpoint cadence.
	PagerOptions = storage.PagerOptions
	// PagerStats counts the pager's physical I/O (measured, not simulated).
	PagerStats = storage.PagerStats
	// VFS is the file-system seam the pager runs on: the real OS, an
	// in-memory power-cut model, or a fault injector.
	VFS = storage.VFS
	// OSVFS is the production VFS backed by the operating system.
	OSVFS = storage.OSVFS
	// MemVFS is the deterministic in-memory power-cut model: unsynced
	// writes may survive a crash wholly or torn, or vanish; only synced
	// writes are guaranteed to survive.
	MemVFS = storage.MemVFS
	// FaultFS wraps a MemVFS and injects scripted crashes, read errors,
	// fsync failures and short writes.
	FaultFS = storage.FaultFS
	// FaultScript says which operations of a FaultFS fail and how.
	FaultScript = storage.FaultScript
	// RTreeStore binds an RTree to a Pager and commits it incrementally:
	// only pages whose bytes changed are written, dissolved nodes' pages
	// are freed and reused.
	RTreeStore = rtree.TreeStore
	// RTreeCommitStats describes one RTreeStore commit.
	RTreeCommitStats = rtree.CommitStats
	// PageReader is the measured-I/O hook of JoinOptions: attach an
	// RTreeStore as PageReaderR/PageReaderS and every counted disk read of
	// the join performs one physical, checksum-verified page read.
	PageReader = buffer.PageReader
)

// OpenPager opens (or creates) a crash-safe page store at path on fs,
// recovering any committed state a previous crash left in the write-ahead
// log.
func OpenPager(fs VFS, path string, pageSize int, opts PagerOptions) (*Pager, error) {
	return storage.OpenPager(fs, path, pageSize, opts)
}

// NewMemVFS returns an empty in-memory power-cut file system.
func NewMemVFS() *MemVFS { return storage.NewMemVFS() }

// NewFaultFS wraps base with the scripted fault injector.
func NewFaultFS(base *MemVFS, script FaultScript) *FaultFS {
	return storage.NewFaultFS(base, script)
}

// NewRTreeStore binds a freshly built tree to an empty pager; the first
// Commit writes every node.
func NewRTreeStore(t *RTree, p *Pager) (*RTreeStore, error) { return rtree.NewTreeStore(t, p) }

// OpenRTreeStore reloads the tree committed to p (validating checksums,
// cycle freedom and level discipline) and binds it for incremental commits.
func OpenRTreeStore(p *Pager, opts RTreeOptions) (*RTreeStore, error) {
	return rtree.OpenTreeStore(p, opts)
}

// Spatial join of two R-trees (the filter step, the paper's core subject).
type (
	// JoinMethod selects one of the paper's algorithms.
	JoinMethod = join.Method
	// JoinOptions configures algorithm, buffer and height policy.
	JoinOptions = join.Options
	// JoinResult carries the result pairs and the counted costs.
	JoinResult = join.Result
	// IDPair is one result pair of object identifiers.
	IDPair = join.Pair
	// HeightPolicy selects the strategy for trees of different heights.
	HeightPolicy = join.HeightPolicy
	// Metrics is a snapshot of the cost counters.
	Metrics = metrics.Snapshot
)

// Join algorithms (section 4 of the paper) and the index-free baseline.
const (
	NestedLoopJoin = join.NestedLoop
	SpatialJoin1   = join.SJ1
	SpatialJoin2   = join.SJ2
	SpatialJoin3   = join.SJ3
	SpatialJoin4   = join.SJ4
	SpatialJoin5   = join.SJ5
)

// Height policies for joining trees of different heights (section 4.4).
const (
	WindowPerPair  = join.PolicyWindowPerPair
	BatchedWindows = join.PolicyBatchedWindows
	SweepOrder     = join.PolicySweepOrder
)

// Join predicates: the condition a result pair must satisfy.  The zero
// Predicate is MBR intersection (the paper's join); within-distance and kNN
// are the distance-based extensions of ROADMAP item 4, supported by every
// sequential method, every parallel partition strategy, the server wire
// protocol and the shard router.
type JoinPredicate = join.Predicate

// IntersectsPredicate is the default MBR-intersection predicate.
func IntersectsPredicate() JoinPredicate { return join.Intersects() }

// WithinDistancePredicate keeps pairs whose MBRs come within eps of each
// other (Chebyshev-expanded filter, exact counted Euclidean test).
func WithinDistancePredicate(eps float64) JoinPredicate { return join.WithinDistance(eps) }

// NearestNeighborsPredicate reports, for every R rectangle, its k nearest S
// rectangles by MBR distance (ties broken by S identifier).
func NearestNeighborsPredicate(k int) JoinPredicate { return join.NearestNeighbors(k) }

// ParseJoinPredicate parses the textual predicate forms used on the command
// lines and the wire: "intersects" (or empty), "within:EPS", "knn:K".
func ParseJoinPredicate(s string) (JoinPredicate, error) { return join.ParsePredicate(s) }

// TreeJoin computes the MBR-spatial-join of two R-trees.
func TreeJoin(r, s *RTree, opts JoinOptions) (*JoinResult, error) { return join.Join(r, s, opts) }

// ParallelJoinOptions configures ParallelTreeJoin.
type ParallelJoinOptions = join.ParallelOptions

// PartitionStrategy selects how ParallelTreeJoin assigns sub-join tasks to
// workers.
type PartitionStrategy = join.PartitionStrategy

// Partition strategies: the dynamic shared queue, the three deterministic
// schedules (round-robin dealing, greedy LPT bin packing over cost-model
// estimates, and Hilbert-ordered contiguous spatial regions) and the
// locality-preserving work-stealing scheduler (per-worker spatial region
// queues rebalanced at run time by tail-half steals).
const (
	DynamicPartition    = join.PartitionDynamic
	RoundRobinPartition = join.PartitionRoundRobin
	LPTPartition        = join.PartitionLPT
	SpatialPartition    = join.PartitionSpatial
	StealingPartition   = join.PartitionStealing
)

// ParallelTreeJoin computes the MBR-spatial-join with several workers, each
// joining a partition of the qualifying root-entry pairs (the parallel
// execution the paper lists as future work).
func ParallelTreeJoin(r, s *RTree, opts ParallelJoinOptions) (*JoinResult, error) {
	return join.ParallelJoin(r, s, opts)
}

// SortJoinPairs sorts result pairs by (R, S); parallel results are
// schedule-ordered, so callers sort before comparing against a sequential
// result.
func SortJoinPairs(pairs []IDPair) { join.SortPairs(pairs) }

// SortMergeJoin computes the MBR-spatial-join of two unindexed relations by
// sorting and plane-sweeping them; it is the index-free alternative the paper
// mentions for relations without an R*-tree.
func SortMergeJoin(r, s []Item) *JoinResult { return join.SortMergeJoin(r, s, nil) }

// Relations, refinement step and the join taxonomy of section 2.1.
type (
	// Relation is a set of spatial objects indexed by an R*-tree.
	Relation = core.Relation
	// Object is one spatial object (identifier, exact geometry, MBR).
	Object = core.Object
	// SpatialJoinOptions configures a relation-level join.
	SpatialJoinOptions = core.JoinOptions
	// SpatialJoinResult is the outcome of a relation-level join.
	SpatialJoinResult = core.Result
	// JoinType selects MBR-, ID- or object-spatial-join.
	JoinType = core.JoinType
)

// Join types.
const (
	MBRJoin    = core.MBRJoin
	IDJoin     = core.IDJoin
	ObjectJoin = core.ObjectJoin
)

// NewRelation creates an empty relation with an R*-tree index.
func NewRelation(name string, opts RTreeOptions) (*Relation, error) {
	return core.NewRelation(name, opts)
}

// BuildRelation creates a relation from objects.
func BuildRelation(name string, objects []Object, opts RTreeOptions, bulk bool) (*Relation, error) {
	return core.BuildRelation(name, objects, opts, bulk)
}

// SpatialJoin joins two relations: the filter step runs one of the paper's
// R*-tree join algorithms, the refinement step checks exact geometries for
// IDJoin and ObjectJoin.
func SpatialJoin(r, s *Relation, opts SpatialJoinOptions) (*SpatialJoinResult, error) {
	return core.SpatialJoin(r, s, opts)
}

// Object constructors from generated items.
var (
	// LineObjects converts items into polyline objects (street/river data).
	LineObjects = core.LineObjectsFromItems
	// RegionObjects converts items into polygon objects (region data).
	RegionObjects = core.RegionObjectsFromItems
	// MBRObjects converts items into geometry-less objects.
	MBRObjects = core.MBRObjectsFromItems
)

// Synthetic data sets (substitutes for the paper's TIGER/Line and region
// data; see DESIGN.md).
type (
	// DatasetConfig describes one synthetic relation.
	DatasetConfig = datagen.Config
	// DatasetKind selects streets, rivers or regions.
	DatasetKind = datagen.Kind
)

// Dataset kinds.
const (
	Streets = datagen.Streets
	Rivers  = datagen.Rivers
	Regions = datagen.Regions
)

// GenerateDataset produces a synthetic relation.
func GenerateDataset(cfg DatasetConfig) []Item { return datagen.Generate(cfg) }

// WriteDataset writes items to a CSV file (id,xl,yl,xu,yu).
func WriteDataset(path string, items []Item) error { return dataio.WriteFile(path, items) }

// ReadDataset reads items from a CSV file written by WriteDataset.
func ReadDataset(path string) ([]Item, error) { return dataio.ReadFile(path) }

// Cost model (the paper's HP 720 constants).
type (
	// CostModel converts counted costs into estimated times.
	CostModel = costmodel.Model
	// CostEstimate is an estimated execution time split into I/O and CPU.
	CostEstimate = costmodel.Estimate
	// TreeCatalog is the sampled per-level catalog statistics of an R-tree
	// (RTree.CatalogStats): exact node/entry populations per level plus
	// reservoir-sampled fan-out, entry-extent and density averages.  The
	// parallel planner's task estimator consumes it in place of catalog
	// averages.
	TreeCatalog = costmodel.Catalog
	// TreeCatalogLevel is one level's statistics within a TreeCatalog.
	TreeCatalogLevel = costmodel.LevelStats
)

// DefaultCostModel returns the paper's cost constants.
func DefaultCostModel() CostModel { return costmodel.Default() }

// Experiments: every table and figure of the paper.
type (
	// ExperimentConfig controls data-set scale, page sizes and buffer sizes.
	ExperimentConfig = experiments.Config
	// ExperimentSuite runs the paper's evaluation.
	ExperimentSuite = experiments.Suite
)

// NewExperimentSuite creates an experiment suite.
func NewExperimentSuite(cfg ExperimentConfig) *ExperimentSuite { return experiments.NewSuite(cfg) }

// RunAllExperiments regenerates every table and figure of the paper and
// writes the formatted output to w.
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) {
	experiments.NewSuite(cfg).RunAll(w)
}
