package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/sweep"
)

// The benchmarks mirror the paper's evaluation: one benchmark per table and
// figure (driving the experiment harness) plus micro-benchmarks for the
// individual join algorithms and index operations.
//
// BenchScale is deliberately small so `go test -bench=.` finishes in minutes;
// cmd/experiments -scale 1.0 reproduces the paper's full cardinalities.
const benchScale = 0.02

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite

	benchTreesOnce sync.Once
	benchTreeR     *rtree.Tree
	benchTreeS     *rtree.Tree
	benchItemsR    []Item
	benchItemsS    []Item
)

// suiteForBench returns a shared experiment suite; building the trees is done
// once outside the timed sections.
func suiteForBench() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Config{
			Scale:         benchScale,
			PageSizes:     []int{storage.PageSize1K, storage.PageSize2K},
			BufferSizesKB: []int{0, 32, 128},
			UsePathBuffer: true,
		})
		// Warm the dataset and tree caches so the benchmarks measure the
		// experiment itself, not tree construction.
		benchSuite.Table1()
	})
	return benchSuite
}

func treesForBench() (*rtree.Tree, *rtree.Tree) {
	benchTreesOnce.Do(func() {
		benchItemsR = GenerateDataset(DatasetConfig{Kind: Streets, Count: 8000, Seed: 1})
		benchItemsS = GenerateDataset(DatasetConfig{Kind: Rivers, Count: 8000, Seed: 2})
		var err error
		benchTreeR, err = BuildRTree(RTreeOptions{PageSize: PageSize1K}, benchItemsR, false)
		if err != nil {
			panic(err)
		}
		benchTreeS, err = BuildRTree(RTreeOptions{PageSize: PageSize1K}, benchItemsS, false)
		if err != nil {
			panic(err)
		}
	})
	return benchTreeR, benchTreeS
}

// --- One benchmark per paper table / figure -------------------------------

// BenchmarkTable1 regenerates Table 1 (R*-tree properties per page size).
func BenchmarkTable1(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := s.Table1(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (disk accesses and comparisons of SJ1).
func BenchmarkTable2(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := s.Table2(); len(res.Cells) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (estimated execution time of SJ1).
func BenchmarkFigure2(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pts := s.Figure2(); len(pts) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (search-space restriction).
func BenchmarkTable3(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := s.Table3(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (effect of spatial sorting).
func BenchmarkTable4(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := s.Table4(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable5 regenerates Table 5 (read schedules SJ3/SJ4/SJ5).
func BenchmarkTable5(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := s.Table5(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable6 regenerates Table 6 (I/O performance of SJ4 vs SJ1).
func BenchmarkTable6(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := s.Table6(); len(res.Cells) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable7 regenerates Table 7 (trees of different heights).
func BenchmarkTable7(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := s.Table7(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8 (estimated execution time of SJ4).
func BenchmarkFigure8(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pts := s.Figure8(); len(pts) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9 (improvement factors of SJ4).
func BenchmarkFigure9(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pts := s.Figure9(); len(pts) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable8 regenerates Table 8 (characteristics of tests A-E).
func BenchmarkTable8(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := s.Table8(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10 (improvement factors for tests A-E).
func BenchmarkFigure10(b *testing.B) {
	s := suiteForBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pts := s.Figure10(); len(pts) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// --- Micro-benchmarks for the individual algorithms ------------------------

// benchmarkJoinMethod measures one join algorithm on the shared tree pair.
func benchmarkJoinMethod(b *testing.B, method JoinMethod, bufferKB int) {
	r, s := treesForBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := TreeJoin(r, s, JoinOptions{
			Method:        method,
			BufferBytes:   bufferKB << 10,
			UsePathBuffer: true,
			DiscardPairs:  true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Count == 0 {
			b.Fatal("empty join result")
		}
	}
}

func BenchmarkSpatialJoin1(b *testing.B) { benchmarkJoinMethod(b, SpatialJoin1, 128) }
func BenchmarkSpatialJoin2(b *testing.B) { benchmarkJoinMethod(b, SpatialJoin2, 128) }
func BenchmarkSpatialJoin3(b *testing.B) { benchmarkJoinMethod(b, SpatialJoin3, 128) }
func BenchmarkSpatialJoin4(b *testing.B) { benchmarkJoinMethod(b, SpatialJoin4, 128) }
func BenchmarkSpatialJoin5(b *testing.B) { benchmarkJoinMethod(b, SpatialJoin5, 128) }

// BenchmarkSpatialJoin4NoBuffer isolates the effect of the LRU buffer
// (ablation: buffer size 0 vs 128 KByte).
func BenchmarkSpatialJoin4NoBuffer(b *testing.B) { benchmarkJoinMethod(b, SpatialJoin4, 0) }

// BenchmarkRStarInsert measures dynamic insertion into an R*-tree.
func BenchmarkRStarInsert(b *testing.B) {
	items := GenerateDataset(DatasetConfig{Kind: Streets, Count: 20000, Seed: 9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := NewRTree(RTreeOptions{PageSize: PageSize2K})
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range items {
			t.Insert(it.Rect, it.Data)
		}
	}
}

// BenchmarkSTRBulkLoad measures STR bulk loading of the same data (ablation:
// dynamic insertion vs packing).
func BenchmarkSTRBulkLoad(b *testing.B) {
	items := GenerateDataset(DatasetConfig{Kind: Streets, Count: 20000, Seed: 9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRTree(RTreeOptions{PageSize: PageSize2K}, items, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildRTreeDynamic measures full R*-tree construction by dynamic
// insertion (the paper's build method).  The plain variant pays the full
// ChooseSubtree overlap scan per insert; the hilbert-buffered variant stages
// the same items in a Hilbert insertion buffer, which applies them in curve
// order and appends runs directly to the previous insert's leaf (the PR-2(b)
// CPU bottleneck, closed; BENCH_5.json records the speedup and hit rate).
func BenchmarkBuildRTreeDynamic(b *testing.B) {
	items := GenerateDataset(DatasetConfig{Kind: Streets, Count: 20000, Seed: 9})
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t, err := BuildRTree(RTreeOptions{PageSize: PageSize2K}, items, false)
			if err != nil {
				b.Fatal(err)
			}
			if t.Len() != len(items) {
				b.Fatal("lost entries")
			}
		}
	})
	b.Run("hilbert-buffered", func(b *testing.B) {
		b.ReportAllocs()
		hitRate := 0.0
		var last *RTree
		for i := 0; i < b.N; i++ {
			t, err := NewRTree(RTreeOptions{PageSize: PageSize2K})
			if err != nil {
				b.Fatal(err)
			}
			buf := NewRTreeInsertBuffer(t, len(items))
			for _, it := range items {
				buf.Stage(it.Rect, it.Data)
			}
			buf.Flush()
			if t.Len() != len(items) {
				b.Fatal("lost entries")
			}
			hitRate = float64(buf.HintHits()) / float64(buf.Applied())
			last = t
		}
		b.StopTimer()
		b.ReportMetric(hitRate, "hint-hit-rate")
		if err := last.CheckInvariants(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkBuildRTreeSTR measures STR bulk loading of the same data.
func BenchmarkBuildRTreeSTR(b *testing.B) {
	items := GenerateDataset(DatasetConfig{Kind: Streets, Count: 20000, Seed: 9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := BuildRTree(RTreeOptions{PageSize: PageSize2K}, items, true)
		if err != nil {
			b.Fatal(err)
		}
		if t.Len() != len(items) {
			b.Fatal("lost entries")
		}
	}
}

// BenchmarkWindowQuery measures the single-scan query the paper's
// introduction motivates.
func BenchmarkWindowQuery(b *testing.B) {
	r, _ := treesForBench()
	window := NewRect(0.4, 0.4, 0.45, 0.45)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		r.Search(window, func(TreeEntry) bool { n++; return true })
	}
}

// BenchmarkGuttmanVsRStarQuery compares window-query work between the R*-tree
// and the quadratic R-tree (ablation of the index variant).
func BenchmarkGuttmanQuery(b *testing.B) {
	items := GenerateDataset(DatasetConfig{Kind: Streets, Count: 8000, Seed: 1})
	tree, err := BuildRTree(RTreeOptions{PageSize: PageSize1K, Variant: Quadratic}, items, false)
	if err != nil {
		b.Fatal(err)
	}
	window := NewRect(0.4, 0.4, 0.45, 0.45)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tree.Search(window, func(TreeEntry) bool { n++; return true })
	}
}

// BenchmarkHeightPolicies compares the three policies of section 4.4.
func BenchmarkHeightPolicies(b *testing.B) {
	big := GenerateDataset(DatasetConfig{Kind: Streets, Count: 12000, Seed: 4})
	small := GenerateDataset(DatasetConfig{Kind: Rivers, Count: 800, Seed: 5})
	r, err := BuildRTree(RTreeOptions{PageSize: PageSize1K}, big, false)
	if err != nil {
		b.Fatal(err)
	}
	s, err := BuildRTree(RTreeOptions{PageSize: PageSize1K}, small, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []struct {
		name string
		p    HeightPolicy
	}{
		{"WindowPerPair", WindowPerPair},
		{"BatchedWindows", BatchedWindows},
		{"SweepOrder", SweepOrder},
	} {
		b.Run(policy.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TreeJoin(r, s, JoinOptions{
					Method:       SpatialJoin4,
					HeightPolicy: policy.p,
					BufferBytes:  32 << 10,
					DiscardPairs: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelJoin compares the sequential SJ4 with the work-partitioned
// parallel execution (extension; the paper's future-work section).
func BenchmarkParallelJoin(b *testing.B) {
	r, s := treesForBench()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ParallelTreeJoin(r, s, ParallelJoinOptions{
					Options: JoinOptions{Method: SpatialJoin4, BufferBytes: 128 << 10, DiscardPairs: true},
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Count == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// --- Large-tree join benchmarks --------------------------------------------
//
// The small bench trees above (8k rects) finish a join in about a
// millisecond, so ParallelJoin's planning and spawn cost dominates and the
// parallel speedup cannot show.  The large family joins two 120k-rect trees
// (STR bulk loaded; dynamic insertion of trees this size is what
// BenchmarkBuildRTreeDynamic measures) where the sequential sweep join runs
// long enough for the work partitioning to amortise.
//
// Building the two 120k-rect trees takes far longer than the benchmark
// smoke's -benchtime 1x iterations, so the whole family is gated behind
// testing.Short(): CI's smoke step passes -short and stays in the seconds,
// while a full `go test -bench LargeJoin .` still runs it.

const largeBenchCount = 120000

// skipLargeInShort gates the 120k-rect benchmarks out of -short smoke runs.
func skipLargeInShort(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping 120k-rect tree family in -short mode")
	}
}

var (
	largeTreesOnce sync.Once
	largeTreeR     *rtree.Tree
	largeTreeS     *rtree.Tree
)

func largeTreesForBench() (*rtree.Tree, *rtree.Tree) {
	largeTreesOnce.Do(func() {
		itemsR := GenerateDataset(DatasetConfig{Kind: Streets, Count: largeBenchCount, Seed: 31})
		itemsS := GenerateDataset(DatasetConfig{Kind: Rivers, Count: largeBenchCount, Seed: 32})
		var err error
		largeTreeR, err = BuildRTree(RTreeOptions{PageSize: PageSize4K}, itemsR, true)
		if err != nil {
			panic(err)
		}
		largeTreeS, err = BuildRTree(RTreeOptions{PageSize: PageSize4K}, itemsS, true)
		if err != nil {
			panic(err)
		}
	})
	return largeTreeR, largeTreeS
}

// BenchmarkLargeJoinSequential is the sequential SweepJoin (SJ4) baseline on
// the large tree pair.
func BenchmarkLargeJoinSequential(b *testing.B) {
	skipLargeInShort(b)
	r, s := largeTreesForBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := TreeJoin(r, s, JoinOptions{
			Method:        SpatialJoin4,
			BufferBytes:   1 << 20,
			UsePathBuffer: true,
			DiscardPairs:  true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Count == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkLargeJoinParallel sweeps the worker count on the large tree pair;
// the 8-worker configuration is the scaling target recorded in BENCH_2.json.
func BenchmarkLargeJoinParallel(b *testing.B) {
	skipLargeInShort(b)
	r, s := largeTreesForBench()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ParallelTreeJoin(r, s, ParallelJoinOptions{
					Options: JoinOptions{
						Method:        SpatialJoin4,
						BufferBytes:   1 << 20,
						UsePathBuffer: true,
						DiscardPairs:  true,
					},
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Count == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkLargeJoinParallelStatic runs the deterministic static schedule
// and reports "est-speedup": the cost-model (section 5) speedup of the
// partitioned execution's critical path — planning plus the slowest worker —
// over the sequential SJ4 baseline.  This is the paper's simulation-style
// measure of parallel scaling; wall-clock ns/op can only show the speedup on
// a machine that actually has the cores, whereas the counted costs show the
// quality of the partitioning anywhere.
func BenchmarkLargeJoinParallelStatic(b *testing.B) {
	skipLargeInShort(b)
	r, s := largeTreesForBench()
	opts := JoinOptions{
		Method:        SpatialJoin4,
		BufferBytes:   1 << 20,
		UsePathBuffer: true,
		DiscardPairs:  true,
	}
	seq, err := TreeJoin(r, s, opts)
	if err != nil {
		b.Fatal(err)
	}
	model := DefaultCostModel()
	seqEst := model.EstimateSnapshot(seq.Metrics, r.PageSize())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			speedup := 0.0
			for i := 0; i < b.N; i++ {
				res, err := ParallelTreeJoin(r, s, ParallelJoinOptions{
					Options:  opts,
					Workers:  workers,
					Strategy: RoundRobinPartition,
				})
				if err != nil {
					b.Fatal(err)
				}
				par := experiments.ParallelEstimate(model, res, r.PageSize())
				if par.TotalSeconds() > 0 {
					speedup = seqEst.TotalSeconds() / par.TotalSeconds()
				}
			}
			b.ReportMetric(speedup, "est-speedup")
		})
	}
}

// BenchmarkLargeJoinPartition compares the partition strategies — the three
// static schedules plus the work-stealing scheduler — on the large pair at 8
// workers.  Besides wall clock it reports the counted-cost quality of each
// schedule: the cost-model est-speedup, the per-worker task, comparison and
// disk skew, the buffer-locality hit rate, the steal count and the
// disk-access overhead over the sequential join (the price of the
// partitioned buffer, which the spatial-region schedule is built to shrink).
func BenchmarkLargeJoinPartition(b *testing.B) {
	skipLargeInShort(b)
	r, s := largeTreesForBench()
	opts := JoinOptions{
		Method:        SpatialJoin4,
		BufferBytes:   1 << 20,
		UsePathBuffer: true,
		DiscardPairs:  true,
	}
	seq, err := TreeJoin(r, s, opts)
	if err != nil {
		b.Fatal(err)
	}
	model := DefaultCostModel()
	seqEst := model.EstimateSnapshot(seq.Metrics, r.PageSize())
	seqDisk := float64(seq.Metrics.DiskAccesses())
	for _, strategy := range []PartitionStrategy{RoundRobinPartition, LPTPartition, SpatialPartition, StealingPartition} {
		b.Run(fmt.Sprintf("strategy=%v/workers=8", strategy), func(b *testing.B) {
			b.ReportAllocs()
			var res *JoinResult
			for i := 0; i < b.N; i++ {
				res, err = ParallelTreeJoin(r, s, ParallelJoinOptions{
					Options:  opts,
					Workers:  8,
					Strategy: strategy,
					// STR-loaded roots yield under a dozen giant root-entry
					// tasks; planning one level finer is what gives the
					// schedules room to balance and cluster.
					MinTasksPerWorker: 16,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Count == 0 {
					b.Fatal("empty result")
				}
			}
			par := experiments.ParallelEstimate(model, res, r.PageSize())
			if par.TotalSeconds() > 0 {
				b.ReportMetric(seqEst.TotalSeconds()/par.TotalSeconds(), "est-speedup")
			}
			if seqDisk > 0 {
				b.ReportMetric(float64(res.Metrics.DiskAccesses())/seqDisk, "disk-overhead")
			}
			b.ReportMetric(res.TaskSkew(), "task-skew")
			b.ReportMetric(res.ComparisonSkew(), "comp-skew")
			b.ReportMetric(res.DiskSkew(), "disk-skew")
			b.ReportMetric(res.TimeSkew(model, r.PageSize()), "time-skew")
			b.ReportMetric(res.WorkerBufferHitRate(), "hit-rate")
			steals := 0
			for _, n := range res.WorkerSteals {
				steals += n
			}
			b.ReportMetric(float64(steals), "steals")
		})
	}
}

// BenchmarkLargeJoinUpdates is the update-heavy workload on the 120k-rect
// configuration: each iteration turns over 10% of both relations (deletes of
// the oldest rectangles, Hilbert-buffered inserts of fresh ones) and then
// runs the spatial-partition SJ4 at 8 workers on the mutated trees.  Reported
// metrics pin the PR-5 claims at size: catalog-walks must stay 0 (incremental
// maintenance never recollects, whatever the mutation volume), est-err must
// not drift away from est-err-baseline (the same measure on the unmutated
// pair — per-worker error on this bulk-loaded pair is large at any scale for
// maintained and recollected statistics alike; the experiment-scale
// TableUpdates pins the PR-4 ~12% band), and the hint-hit rate shows the
// insertion buffer working at size.  Uses private trees — the shared large
// pair must stay immutable for the other benchmarks.
func BenchmarkLargeJoinUpdates(b *testing.B) {
	skipLargeInShort(b)
	itemsR := GenerateDataset(DatasetConfig{Kind: Streets, Count: largeBenchCount, Seed: 41})
	itemsS := GenerateDataset(DatasetConfig{Kind: Rivers, Count: largeBenchCount, Seed: 42})
	r, err := BuildRTree(RTreeOptions{PageSize: PageSize4K}, itemsR, true)
	if err != nil {
		b.Fatal(err)
	}
	s, err := BuildRTree(RTreeOptions{PageSize: PageSize4K}, itemsS, true)
	if err != nil {
		b.Fatal(err)
	}
	model := DefaultCostModel()
	estErrOf := func(res *JoinResult) float64 {
		err, _ := experiments.MeanEstErrPct(model, res, r.PageSize())
		return err
	}
	updateOpts := ParallelJoinOptions{
		Options: JoinOptions{
			Method:        SpatialJoin4,
			BufferBytes:   1 << 20,
			UsePathBuffer: true,
			DiscardPairs:  true,
		},
		Workers:           8,
		Strategy:          SpatialPartition,
		MinTasksPerWorker: 16,
	}
	baseRes, err := ParallelTreeJoin(r, s, updateOpts)
	if err != nil {
		b.Fatal(err)
	}
	baseErr := estErrOf(baseRes)
	// Same turnover protocol the experiment table runs, at 120k scale.
	pairR := &experiments.UpdatePair{Tree: r, Live: itemsR, Kind: Streets, Seed: 1000, NextID: 1 << 20}
	pairS := &experiments.UpdatePair{Tree: s, Live: itemsS, Kind: Rivers, Seed: 2000, NextID: 1 << 20}
	var estErr, hitRate float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hitsR, appliedR := pairR.TurnOver(i)
		hitsS, appliedS := pairS.TurnOver(i)
		hitRate = float64(hitsR+hitsS) / float64(appliedR+appliedS)
		res, err := ParallelTreeJoin(r, s, updateOpts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Count == 0 {
			b.Fatal("empty result")
		}
		estErr = estErrOf(res)
	}
	b.StopTimer()
	b.ReportMetric(estErr, "est-err-pct")
	b.ReportMetric(baseErr, "est-err-baseline-pct")
	b.ReportMetric(hitRate, "hint-hit-rate")
	b.ReportMetric(float64(r.CatalogRecollections()+s.CatalogRecollections()), "catalog-walks")
	if walks := r.CatalogRecollections() + s.CatalogRecollections(); walks != 0 {
		b.Fatalf("planning performed %d catalog recollection walks, want 0", walks)
	}
	// Bounded-drift pin: maintained statistics after mutations must not rot.
	// Per-worker error on this pair is large for maintained and recollected
	// statistics alike (~125% unmutated, ~157% after turnover); a maintenance
	// regression (a dropped hook, a rotting reservoir) blows it far past the
	// baseline, which this bound catches.
	if baseErr > 0 && estErr > 2*baseErr+10 {
		b.Fatalf("estimator error after updates %.1f%% drifted past the bound (baseline %.1f%%)", estErr, baseErr)
	}
}

// BenchmarkSweepAppendPairs isolates the allocation-free sorted intersection
// test (the innermost CPU kernel of SJ3-SJ5) on two presorted node-sized
// rectangle sequences; it must report zero allocations.
func BenchmarkSweepAppendPairs(b *testing.B) {
	items := GenerateDataset(DatasetConfig{Kind: Streets, Count: 50, Seed: 3})
	rseq := make([]geom.Rect, len(items))
	sseq := make([]geom.Rect, len(items))
	for i, it := range items {
		rseq[i] = it.Rect
		sseq[len(items)-1-i] = it.Rect
	}
	col := metrics.NewCollector()
	sweep.SortByXL(rseq, col)
	sweep.SortByXL(sseq, col)
	var local metrics.Local
	var buf []sweep.Pair
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sweep.AppendPairs(rseq, sseq, &local, buf[:0])
		if len(buf) == 0 {
			b.Fatal("no pairs")
		}
	}
	local.FlushTo(col)
}

// BenchmarkSortMergeJoin measures the index-free sort-merge baseline on the
// same relations as the tree joins.
func BenchmarkSortMergeJoin(b *testing.B) {
	treesForBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := SortMergeJoin(benchItemsR, benchItemsS); res.Count == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkRestrictionAblation isolates the search-space restriction
// (DESIGN.md ablation list): the sweep join with and without restriction.
func BenchmarkRestrictionAblation(b *testing.B) {
	r, s := treesForBench()
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"WithRestriction", false},
		{"WithoutRestriction", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := join.Join(r, s, join.Options{
					Method:             join.SJ3,
					BufferBytes:        128 << 10,
					DiscardPairs:       true,
					DisableRestriction: cfg.disable,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
