// Command experiments regenerates the tables and figures of the paper's
// evaluation (sections 4 and 5) on the synthetic data sets.
//
// Usage:
//
//	experiments                      # every table and figure at the default scale
//	experiments -scale 1.0           # the paper's full cardinalities (slow)
//	experiments -table 6 -scale 0.1  # a single table
//	experiments -figure 9            # a single figure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/experiments"
	"repro/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scale    = fs.Float64("scale", experiments.DefaultScale, "fraction of the paper's data-set cardinalities")
		table    = fs.Int("table", 0, "run only this table (1-8)")
		figure   = fs.Int("figure", 0, "run only this figure (2, 8, 9 or 10)")
		bulk     = fs.Bool("bulk", false, "build trees with STR bulk loading instead of insertion")
		parallel = fs.Bool("parallel", false, "run only the parallel load-balance experiment (extension)")
		updates  = fs.Bool("updates", false, "run only the update-heavy workload experiment (extension)")
		disk     = fs.Bool("disk", false, "run only the measured-I/O disk experiments on real files (extension)")
		recovery = fs.Bool("recovery", false, "run only the crash-recovery property harness (extension)")
		server   = fs.Bool("server", false, "run only the concurrent join server torture harness (extension)")
		shards   = fs.Bool("shards", false, "run only the sharded-deployment scaling benchmark (extension)")
		preds    = fs.Bool("predicates", false, "run only the predicate filter-and-refine suite (extension)")
		pages    = fs.String("pages", "", "comma-separated page sizes in bytes (default 1024,2048,4096,8192)")
		buffers  = fs.String("buffers", "", "comma-separated LRU buffer sizes in KByte (default 0,8,32,128,512)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := repro.ExperimentConfig{Scale: *scale, BulkLoad: *bulk, UsePathBuffer: true}
	var err error
	if cfg.PageSizes, err = parseIntList(*pages); err != nil {
		return fmt.Errorf("-pages: %w", err)
	}
	if cfg.BufferSizesKB, err = parseIntList(*buffers); err != nil {
		return fmt.Errorf("-buffers: %w", err)
	}
	for _, ps := range cfg.PageSizes {
		if storage.CapacityForPage(ps) < 4 {
			return fmt.Errorf("page size %d is too small", ps)
		}
	}

	suite := repro.NewExperimentSuite(cfg)
	switch {
	case *disk:
		dir, err := os.MkdirTemp("", "repro-disk-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		experiments.PrintTableDiskIO(out, suite.TableDiskIO(storage.OSVFS{}, dir))
		fmt.Fprintln(out)
		experiments.PrintTableDiskUpdates(out, suite.TableDiskUpdates(storage.OSVFS{}, dir))
	case *recovery:
		report := experiments.RunRecoveryHarness(experiments.RecoveryConfig{})
		experiments.PrintRecoveryReport(out, report)
		if !report.Ok() {
			return fmt.Errorf("crash-recovery harness failed (%d violations)", len(report.Failures))
		}
	case *server:
		report := experiments.RunServerTorture(experiments.ServerTortureConfig{})
		experiments.PrintServerReport(out, report)
		if !report.Ok() {
			return fmt.Errorf("server torture harness failed (%d violations)", len(report.Failures))
		}
	case *shards:
		report := experiments.RunShardBench(experiments.ShardBenchConfig{Scale: *scale})
		experiments.PrintShardReport(out, report)
		if !report.Ok() {
			return fmt.Errorf("shard benchmark failed (%d violations)", len(report.Failures))
		}
	case *preds:
		report := experiments.RunPredicateBench(experiments.PredicateBenchConfig{Scale: *scale})
		experiments.PrintPredicateReport(out, report)
		if !report.Ok() {
			return fmt.Errorf("predicate suite failed (%d violations)", len(report.Failures))
		}
	case *updates:
		experiments.PrintTableUpdates(out, suite.TableUpdates())
	case *parallel:
		experiments.PrintTableParallel(out, suite.TableParallel())
		fmt.Fprintln(out)
		experiments.PrintTableEstimator(out, suite.TableEstimator())
	case *table == 0 && *figure == 0:
		suite.RunAll(out)
	case *table != 0:
		return runTable(suite, *table, out)
	default:
		return runFigure(suite, *figure, out)
	}
	return nil
}

func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func runTable(s *experiments.Suite, n int, out io.Writer) error {
	switch n {
	case 1:
		experiments.PrintTable1(out, s.Table1())
	case 2:
		experiments.PrintTable2(out, s, s.Table2())
	case 3:
		experiments.PrintTable3(out, s.Table3())
	case 4:
		experiments.PrintTable4(out, s.Table4())
	case 5:
		experiments.PrintTable5(out, s.Table5())
	case 6:
		experiments.PrintTable6(out, s, s.Table6())
	case 7:
		experiments.PrintTable7(out, s.Table7())
	case 8:
		experiments.PrintTable8(out, s.Table8())
	default:
		return fmt.Errorf("unknown table %d (the paper has tables 1-8)", n)
	}
	return nil
}

func runFigure(s *experiments.Suite, n int, out io.Writer) error {
	switch n {
	case 2:
		experiments.PrintFigure(out, s, "Figure 2: Estimated execution time of SpatialJoin1", s.Figure2())
	case 8:
		experiments.PrintFigure(out, s, "Figure 8: Estimated execution time of SpatialJoin4", s.Figure8())
	case 9:
		experiments.PrintFigure9(out, s.Figure9())
	case 10:
		experiments.PrintFigure10(out, s.Figure10())
	default:
		return fmt.Errorf("unknown figure %d (the evaluation has figures 2, 8, 9 and 10)", n)
	}
	return nil
}
