package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/storage"
)

func newTestDaemon(t *testing.T) http.Handler {
	t.Helper()
	cfg := daemonConfig{
		db:       "r.db",
		pageSize: storage.PageSize1K,
		sItems:   200,
		sSide:    0.02,
		seed:     42,
	}
	srv, closeStorage, err := buildServer(storage.NewMemVFS(), cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		closeStorage()
	})
	return newMux(srv)
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestDaemonUpdateRoundJoin drives the full HTTP surface: stage inserts,
// observe they are invisible until a round, then join and read them back.
func TestDaemonUpdateRoundJoin(t *testing.T) {
	h := newTestDaemon(t)

	// Joining the empty relation returns no pairs.
	w := doJSON(t, h, "POST", "/join", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("join on empty: %d %s", w.Code, w.Body)
	}
	var empty joinRespJSON
	if err := json.Unmarshal(w.Body.Bytes(), &empty); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if empty.Count != 0 {
		t.Fatalf("empty relation produced %d pairs", empty.Count)
	}

	// Stage rectangles covering the whole unit square: every S item matches.
	ops := []opJSON{}
	for i := 0; i < 4; i++ {
		ops = append(ops, opJSON{XL: 0, YL: 0, XU: 1.1, YU: 1.1, Data: int32(i)})
	}
	w = doJSON(t, h, "POST", "/update", ops)
	if w.Code != http.StatusAccepted {
		t.Fatalf("update: %d %s", w.Code, w.Body)
	}

	// Still invisible: no round has run.
	w = doJSON(t, h, "POST", "/join", nil)
	var before joinRespJSON
	json.Unmarshal(w.Body.Bytes(), &before)
	if before.Count != 0 {
		t.Fatalf("staged ops visible before round: %d pairs", before.Count)
	}

	w = doJSON(t, h, "POST", "/round", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("round: %d %s", w.Code, w.Body)
	}

	w = doJSON(t, h, "POST", "/join", joinReqJSON{Workers: 2})
	if w.Code != http.StatusOK {
		t.Fatalf("join: %d %s", w.Code, w.Body)
	}
	var after joinRespJSON
	if err := json.Unmarshal(w.Body.Bytes(), &after); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if want := 4 * 200; after.Count != want {
		t.Fatalf("join count = %d, want %d", after.Count, want)
	}
	if len(after.Pairs) != after.Count {
		t.Fatalf("pairs materialised %d, count %d", len(after.Pairs), after.Count)
	}
	if after.Epoch <= empty.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", empty.Epoch, after.Epoch)
	}

	// DiscardPairs suppresses the pair payload but keeps the count.
	w = doJSON(t, h, "POST", "/join", joinReqJSON{DiscardPairs: true})
	var discard joinRespJSON
	json.Unmarshal(w.Body.Bytes(), &discard)
	if discard.Count != after.Count || len(discard.Pairs) != 0 {
		t.Fatalf("discard_pairs: count=%d pairs=%d", discard.Count, len(discard.Pairs))
	}
}

// TestDaemonStatsAndErrors exercises /stats and the error mapping of the
// remaining surface.
func TestDaemonStatsAndErrors(t *testing.T) {
	h := newTestDaemon(t)

	w := doJSON(t, h, "GET", "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body)
	}
	var stats map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}

	// Malformed update body.
	req := httptest.NewRequest("POST", "/update", bytes.NewBufferString("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed update: %d", rec.Code)
	}

	// Deletes round-trip: insert then delete the same rect, count returns
	// to zero.
	rect := opJSON{XL: 0, YL: 0, XU: 1.1, YU: 1.1, Data: 7}
	doJSON(t, h, "POST", "/update", []opJSON{rect})
	doJSON(t, h, "POST", "/round", nil)
	del := rect
	del.Delete = true
	doJSON(t, h, "POST", "/update", []opJSON{del})
	doJSON(t, h, "POST", "/round", nil)
	w = doJSON(t, h, "POST", "/join", nil)
	var resp joinRespJSON
	json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Count != 0 {
		t.Fatalf("after insert+delete, join count = %d, want 0", resp.Count)
	}
}

// TestDaemonShedMapsToRetryAfter forces cost-based shedding and checks the
// 503 + Retry-After mapping.
func TestDaemonShedMapsToRetryAfter(t *testing.T) {
	cfg := daemonConfig{
		db:         "r.db",
		pageSize:   storage.PageSize1K,
		sItems:     200,
		sSide:      0.02,
		seed:       42,
		costBudget: 1, // 1ns: every request exceeds the budget
	}
	srv, closeStorage, err := buildServer(storage.NewMemVFS(), cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		closeStorage()
	})
	h := newMux(srv)

	w := doJSON(t, h, "POST", "/join", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed request: %d %s", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatalf("shed response missing Retry-After")
	}
}

// TestDaemonPersistsAcrossRestart commits via the HTTP surface, tears the
// daemon down, rebuilds it on the same VFS and checks the data survived.
func TestDaemonPersistsAcrossRestart(t *testing.T) {
	vfs := storage.NewMemVFS()
	cfg := daemonConfig{db: "r.db", pageSize: storage.PageSize1K, sItems: 200, sSide: 0.02, seed: 42}

	srv, closeStorage, err := buildServer(vfs, cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	h := newMux(srv)
	doJSON(t, h, "POST", "/update", []opJSON{{XL: 0, YL: 0, XU: 1.1, YU: 1.1, Data: 7}})
	if w := doJSON(t, h, "POST", "/round", nil); w.Code != http.StatusOK {
		t.Fatalf("round: %d %s", w.Code, w.Body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	closeStorage()

	srv2, closeStorage2, err := buildServer(vfs, cfg)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	t.Cleanup(func() {
		srv2.Close()
		closeStorage2()
	})
	w := doJSON(t, newMux(srv2), "POST", "/join", nil)
	var resp joinRespJSON
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Count != 200 {
		t.Fatalf("after restart, join count = %d, want 200", resp.Count)
	}
}
