package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/zorder"
)

// newTestHandler mounts the daemon's HTTP surface exactly as run() does.
func newTestHandler(srv *server.Server) http.Handler {
	return server.NewHandler(srv, server.HandlerConfig{})
}

func newTestDaemon(t *testing.T) http.Handler {
	t.Helper()
	cfg := daemonConfig{
		db:       "r.db",
		pageSize: storage.PageSize1K,
		sItems:   200,
		sSide:    0.02,
		seed:     42,
	}
	srv, closeStorage, err := buildServer(storage.NewMemVFS(), cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		closeStorage()
	})
	return newTestHandler(srv)
}

// newShardedDaemon builds a daemon that owns only the given Hilbert range.
func newShardedDaemon(t *testing.T, shard zorder.KeyRange) http.Handler {
	t.Helper()
	cfg := daemonConfig{
		db:       "r.db",
		pageSize: storage.PageSize1K,
		sItems:   200,
		sSide:    0.02,
		seed:     42,
		shard:    &shard,
	}
	srv, closeStorage, err := buildServer(storage.NewMemVFS(), cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		closeStorage()
	})
	return server.NewHandler(srv, server.HandlerConfig{Shard: cfg.shard})
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestDaemonUpdateRoundJoin drives the full HTTP surface: stage inserts,
// observe they are invisible until a round, then join and read them back.
func TestDaemonUpdateRoundJoin(t *testing.T) {
	h := newTestDaemon(t)

	// Joining the empty relation returns no pairs.
	w := doJSON(t, h, "POST", "/join", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("join on empty: %d %s", w.Code, w.Body)
	}
	var empty server.JoinResponseWire
	if err := json.Unmarshal(w.Body.Bytes(), &empty); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if empty.Count != 0 {
		t.Fatalf("empty relation produced %d pairs", empty.Count)
	}

	// Stage rectangles covering the whole unit square: every S item matches.
	ops := []server.OpWire{}
	for i := 0; i < 4; i++ {
		ops = append(ops, server.OpWire{XL: 0, YL: 0, XU: 1.1, YU: 1.1, Data: int32(i)})
	}
	w = doJSON(t, h, "POST", "/update", ops)
	if w.Code != http.StatusAccepted {
		t.Fatalf("update: %d %s", w.Code, w.Body)
	}

	// Still invisible: no round has run.
	w = doJSON(t, h, "POST", "/join", nil)
	var before server.JoinResponseWire
	json.Unmarshal(w.Body.Bytes(), &before)
	if before.Count != 0 {
		t.Fatalf("staged ops visible before round: %d pairs", before.Count)
	}

	w = doJSON(t, h, "POST", "/round", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("round: %d %s", w.Code, w.Body)
	}

	w = doJSON(t, h, "POST", "/join", server.JoinRequestWire{Workers: 2})
	if w.Code != http.StatusOK {
		t.Fatalf("join: %d %s", w.Code, w.Body)
	}
	var after server.JoinResponseWire
	if err := json.Unmarshal(w.Body.Bytes(), &after); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if want := 4 * 200; after.Count != want {
		t.Fatalf("join count = %d, want %d", after.Count, want)
	}
	if len(after.Pairs) != after.Count {
		t.Fatalf("pairs materialised %d, count %d", len(after.Pairs), after.Count)
	}
	if after.Epoch <= empty.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", empty.Epoch, after.Epoch)
	}

	// DiscardPairs suppresses the pair payload but keeps the count.
	w = doJSON(t, h, "POST", "/join", server.JoinRequestWire{DiscardPairs: true})
	var discard server.JoinResponseWire
	json.Unmarshal(w.Body.Bytes(), &discard)
	if discard.Count != after.Count || len(discard.Pairs) != 0 {
		t.Fatalf("discard_pairs: count=%d pairs=%d", discard.Count, len(discard.Pairs))
	}
}

// TestDaemonStatsAndErrors exercises /stats and the error mapping of the
// remaining surface.
func TestDaemonStatsAndErrors(t *testing.T) {
	h := newTestDaemon(t)

	w := doJSON(t, h, "GET", "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body)
	}
	var stats map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}

	// Malformed update body.
	req := httptest.NewRequest("POST", "/update", bytes.NewBufferString("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed update: %d", rec.Code)
	}

	// Deletes round-trip: insert then delete the same rect, count returns
	// to zero.
	rect := server.OpWire{XL: 0, YL: 0, XU: 1.1, YU: 1.1, Data: 7}
	doJSON(t, h, "POST", "/update", []server.OpWire{rect})
	doJSON(t, h, "POST", "/round", nil)
	del := rect
	del.Delete = true
	doJSON(t, h, "POST", "/update", []server.OpWire{del})
	doJSON(t, h, "POST", "/round", nil)
	w = doJSON(t, h, "POST", "/join", nil)
	var resp server.JoinResponseWire
	json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Count != 0 {
		t.Fatalf("after insert+delete, join count = %d, want 0", resp.Count)
	}
}

// TestDaemonShedMapsToRetryAfter forces cost-based shedding and checks the
// 503 + Retry-After mapping.
func TestDaemonShedMapsToRetryAfter(t *testing.T) {
	cfg := daemonConfig{
		db:         "r.db",
		pageSize:   storage.PageSize1K,
		sItems:     200,
		sSide:      0.02,
		seed:       42,
		costBudget: 1, // 1ns: every request exceeds the budget
	}
	srv, closeStorage, err := buildServer(storage.NewMemVFS(), cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		closeStorage()
	})
	h := newTestHandler(srv)

	w := doJSON(t, h, "POST", "/join", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed request: %d %s", w.Code, w.Body)
	}
	ra := w.Header().Get("Retry-After")
	if ra == "" {
		t.Fatalf("shed response missing Retry-After")
	}
	// RFC 9110 requires whole seconds.  The header used to be formatted with
	// %g ("0.0005"), which integer-parsing clients read as 0 — an invitation
	// to hammer a server that just asked for breathing room.
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an RFC 9110 integer: %v", ra, err)
	}
	if secs < 1 {
		t.Fatalf("Retry-After = %d, want at least 1 second", secs)
	}
}

// TestDaemonShardRejectsForeignUpdates pins the -shard contract: an op whose
// centre keys outside the owned Hilbert range is rejected with 400 before
// anything is staged, and in-range ops are accepted.
func TestDaemonShardRejectsForeignUpdates(t *testing.T) {
	// Owned half of the key space, probed with ops on either side of the cut.
	half := zorder.KeyRange{Lo: 0, Hi: zorder.KeySpace / 2}
	h := newShardedDaemon(t, half)

	inRect := server.OpWire{XL: 0.1, YL: 0.1, XU: 0.12, YU: 0.12, Data: 1}
	outRect := server.OpWire{XL: 0.9, YL: 0.9, XU: 0.92, YU: 0.92, Data: 2}
	keyOf := func(op server.OpWire) uint64 {
		return zorder.HilbertKey(op.Rect().Center(), server.UnitWorld)
	}
	if !half.Contains(keyOf(inRect)) || half.Contains(keyOf(outRect)) {
		t.Fatalf("test rectangles landed on the wrong sides of the shard cut")
	}

	if w := doJSON(t, h, "POST", "/update", []server.OpWire{inRect}); w.Code != http.StatusAccepted {
		t.Fatalf("in-range update: %d %s", w.Code, w.Body)
	}
	if w := doJSON(t, h, "POST", "/update", []server.OpWire{inRect, outRect}); w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range update: %d %s", w.Code, w.Body)
	}

	// /stats advertises the owned range so a router can learn the layout.
	w := doJSON(t, h, "GET", "/stats", nil)
	var stats server.StatsWire
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if stats.Shard != half.String() {
		t.Fatalf("stats shard = %q, want %q", stats.Shard, half.String())
	}
}

// TestParseShardFlag checks the -shard flag round trip and rejection.
func TestParseShardFlag(t *testing.T) {
	cfg, err := parseFlags([]string{"-shard", "0:100"})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if cfg.shard == nil || *cfg.shard != (zorder.KeyRange{Lo: 0, Hi: 100}) {
		t.Fatalf("shard = %v, want 0:100", cfg.shard)
	}
	if cfg, err := parseFlags(nil); err != nil || cfg.shard != nil {
		t.Fatalf("default shard = %v (err %v), want nil", cfg.shard, err)
	}
	if _, err := parseFlags([]string{"-shard", "5:4"}); err == nil {
		t.Fatal("parseFlags accepted an empty shard range")
	}
}

// TestDaemonPersistsAcrossRestart commits via the HTTP surface, tears the
// daemon down, rebuilds it on the same VFS and checks the data survived.
func TestDaemonPersistsAcrossRestart(t *testing.T) {
	vfs := storage.NewMemVFS()
	cfg := daemonConfig{db: "r.db", pageSize: storage.PageSize1K, sItems: 200, sSide: 0.02, seed: 42}

	srv, closeStorage, err := buildServer(vfs, cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	h := newTestHandler(srv)
	doJSON(t, h, "POST", "/update", []server.OpWire{{XL: 0, YL: 0, XU: 1.1, YU: 1.1, Data: 7}})
	if w := doJSON(t, h, "POST", "/round", nil); w.Code != http.StatusOK {
		t.Fatalf("round: %d %s", w.Code, w.Body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	closeStorage()

	srv2, closeStorage2, err := buildServer(vfs, cfg)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	t.Cleanup(func() {
		srv2.Close()
		closeStorage2()
	})
	w := doJSON(t, newTestHandler(srv2), "POST", "/join", nil)
	var resp server.JoinResponseWire
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Count != 200 {
		t.Fatalf("after restart, join count = %d, want 200", resp.Count)
	}
}
