// Command spatialjoind serves spatial joins over HTTP: a pager-backed,
// crash-safe R-tree of churned rectangles (R) is joined on demand against a
// static reference tree (S), with snapshot isolation between the single
// writer and concurrent readers.  Mutations staged via /update become
// visible atomically at round boundaries, driven by a ticker or an explicit
// /round.  Admission control sheds load with Retry-After, deadlines and
// cancellation propagate into the join, and a storage fault flips the server
// into a broken state the round loop repairs by reopening the pager (WAL
// recovery).
//
// With -shard lo:hi the daemon serves one Hilbert key range of a sharded
// deployment: /update rejects rectangles whose centre keys outside the
// range, /stats reports the range and the snapshot's coverage summary, and
// cmd/spatialjoinrouter fans queries out across the shard set.
//
// Usage:
//
//	spatialjoind -db r.db -s-items 10000 -addr :7453 -round 500ms
//	spatialjoind -db shard0.db -addr :7461 -shard 0:2147483648
//
// Endpoints (see internal/server's wire types):
//
//	POST /update  JSON [{"xl":..,"yl":..,"xu":..,"yu":..,"data":1,"delete":false}, ...]
//	POST /round   commit staged mutations and flip the snapshot now
//	POST /join    JSON {"workers":4,"discard_pairs":false} (body optional)
//	GET  /stats   server counters, epoch state and coverage summary
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/zorder"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spatialjoind:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	addr        string
	db          string
	pageSize    int
	roundEvery  time.Duration
	deadline    time.Duration
	maxInflight int
	costBudget  time.Duration
	cacheBytes  int
	sItems      int
	sSide       float64
	seed        int64
	predicate   join.Predicate
	shard       *zorder.KeyRange
}

func parseFlags(args []string) (daemonConfig, error) {
	fs := flag.NewFlagSet("spatialjoind", flag.ContinueOnError)
	var cfg daemonConfig
	fs.StringVar(&cfg.addr, "addr", ":7453", "listen address")
	fs.StringVar(&cfg.db, "db", "spatialjoin.db", "path of the pager-backed R relation")
	fs.IntVar(&cfg.pageSize, "page", storage.PageSize4K, "page size in bytes")
	fs.DurationVar(&cfg.roundEvery, "round", 500*time.Millisecond, "round ticker interval (0 disables; use POST /round)")
	fs.DurationVar(&cfg.deadline, "deadline", 10*time.Second, "default per-request deadline")
	fs.IntVar(&cfg.maxInflight, "max-inflight", 64, "admission slots before shedding")
	fs.DurationVar(&cfg.costBudget, "cost-budget", 30*time.Second, "estimated-cost budget before shedding (negative disables)")
	fs.IntVar(&cfg.cacheBytes, "cache", 1<<20, "per-epoch page cache in bytes (0 disables)")
	fs.IntVar(&cfg.sItems, "s-items", 10000, "cardinality of the synthetic static relation S")
	fs.Float64Var(&cfg.sSide, "s-side", 0.001, "rectangle side length of the synthetic S items")
	fs.Int64Var(&cfg.seed, "seed", 42, "seed of the synthetic S relation")
	shard := fs.String("shard", "", "half-open Hilbert key range lo:hi this process owns (empty serves the whole key space)")
	pred := fs.String("predicate", "intersects", "default join predicate for requests that omit one: intersects, within:EPS or knn:K")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	var err error
	if cfg.predicate, err = join.ParsePredicate(*pred); err != nil {
		return cfg, err
	}
	if *shard != "" {
		r, err := zorder.ParseKeyRange(*shard)
		if err != nil {
			return cfg, err
		}
		cfg.shard = &r
	}
	return cfg, nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger := log.New(out, "spatialjoind: ", log.LstdFlags)

	srv, closeStorage, err := buildServer(storage.OSVFS{}, cfg)
	if err != nil {
		return err
	}
	defer closeStorage()

	handler := server.NewHandler(srv, server.HandlerConfig{Shard: cfg.shard})
	httpSrv := &http.Server{Addr: cfg.addr, Handler: handler}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	shardDesc := "whole key space"
	if cfg.shard != nil {
		shardDesc = "shard " + cfg.shard.String()
	}
	logger.Printf("serving on %s (db %s, S=%d items, round every %v, %s)",
		ln.Addr(), cfg.db, cfg.sItems, cfg.roundEvery, shardDesc)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	var wg sync.WaitGroup
	if cfg.roundEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			roundLoop(ctx, srv, cfg.roundEvery, logger)
		}()
	}

	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
	case err := <-errCh:
		wg.Wait()
		return err
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	wg.Wait()
	// One final round so staged mutations become durable before exit.
	if srv.Pending() > 0 && !srv.Broken() {
		if _, err := srv.Round(); err != nil {
			logger.Printf("final round: %v", err)
		}
	}
	return srv.Close()
}

// buildServer opens (or creates) the pager-backed R relation, synthesises
// the static S relation, and assembles the join server with a reopen
// callback that runs WAL recovery on the same database file.
func buildServer(vfs storage.VFS, cfg daemonConfig) (*server.Server, func(), error) {
	pagerOpts := storage.PagerOptions{}
	pager, err := storage.OpenPager(vfs, cfg.db, cfg.pageSize, pagerOpts)
	if err != nil {
		return nil, nil, err
	}
	treeOpts := rtree.Options{PageSize: cfg.pageSize}

	var store *rtree.TreeStore
	if pager.Root() == storage.InvalidPage {
		tree, err := rtree.New(treeOpts)
		if err != nil {
			return nil, nil, errors.Join(err, pager.Close())
		}
		store, err = rtree.NewTreeStore(tree, pager)
		if err != nil {
			return nil, nil, errors.Join(err, pager.Close())
		}
	} else {
		store, err = rtree.OpenTreeStore(pager, treeOpts)
		if err != nil {
			return nil, nil, errors.Join(err, pager.Close())
		}
	}

	sTree, err := buildS(treeOpts, cfg)
	if err != nil {
		return nil, nil, errors.Join(err, pager.Close())
	}

	// curPager tracks the live pager across reopens so shutdown checkpoints
	// the right one.
	var mu sync.Mutex
	curPager := pager

	srv, err := server.New(server.Config{
		Store:           store,
		S:               sTree,
		MaxInflight:     cfg.maxInflight,
		CostBudget:      cfg.costBudget,
		DefaultDeadline: cfg.deadline,
		CacheBytes:      cfg.cacheBytes,
		JoinDefaults:    join.Options{Predicate: cfg.predicate},
		Reopen: func() (*rtree.TreeStore, error) {
			mu.Lock()
			defer mu.Unlock()
			// The old pager is being replaced precisely because a fault broke
			// it, so its close error carries no new information.
			//repolint:ignore latchederr reopen discards the broken pager; its latched error is why we are here
			curPager.Close()
			p, err := storage.OpenPager(vfs, cfg.db, cfg.pageSize, pagerOpts)
			if err != nil {
				return nil, err
			}
			ts, err := rtree.OpenTreeStore(p, treeOpts)
			if err != nil {
				return nil, errors.Join(err, p.Close())
			}
			curPager = p
			return ts, nil
		},
	})
	if err != nil {
		return nil, nil, errors.Join(err, pager.Close())
	}
	closeStorage := func() {
		mu.Lock()
		defer mu.Unlock()
		if err := curPager.Close(); err != nil {
			log.Printf("spatialjoind: closing pager: %v", err)
		}
	}
	return srv, closeStorage, nil
}

func buildS(opts rtree.Options, cfg daemonConfig) (*rtree.Tree, error) {
	if cfg.sItems == 0 {
		return rtree.New(opts)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	items := make([]rtree.Item, cfg.sItems)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = rtree.Item{
			Rect: geom.Rect{XL: x, YL: y, XU: x + cfg.sSide, YU: y + cfg.sSide},
			Data: int32(i),
		}
	}
	return rtree.BulkLoadSTR(opts, items)
}

// roundLoop commits staged mutations on a ticker and repairs a broken
// server by reopening the store.
func roundLoop(ctx context.Context, srv *server.Server, every time.Duration, logger *log.Logger) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if srv.Broken() {
			if err := srv.Reopen(); err != nil {
				logger.Printf("reopen: %v", err)
				continue
			}
			logger.Printf("reopened after storage fault")
		}
		if srv.Pending() == 0 {
			continue
		}
		rs, err := srv.Round()
		if err != nil {
			logger.Printf("round: %v", err)
			continue
		}
		logger.Printf("round: epoch %d, %d ops, %d pages written",
			rs.Epoch, rs.Applied, rs.Commit.PagesWritten)
	}
}
