package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/router"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/zorder"
)

// newShardDaemon runs a real shard server — pager-backed store, static S,
// the same HTTP surface spatialjoind mounts — behind an httptest listener
// and returns its base URL.
func newShardDaemon(t *testing.T, keys zorder.KeyRange, sItems []rtree.Item) string {
	t.Helper()
	treeOpts := rtree.Options{PageSize: storage.PageSize1K}
	pager, err := storage.OpenPager(storage.NewMemVFS(), "r.db", storage.PageSize1K, storage.PagerOptions{})
	if err != nil {
		t.Fatalf("OpenPager: %v", err)
	}
	tree, err := rtree.New(treeOpts)
	if err != nil {
		t.Fatalf("rtree.New: %v", err)
	}
	store, err := rtree.NewTreeStore(tree, pager)
	if err != nil {
		t.Fatalf("NewTreeStore: %v", err)
	}
	sTree, err := rtree.BulkLoadSTR(treeOpts, sItems)
	if err != nil {
		t.Fatalf("BulkLoadSTR: %v", err)
	}
	srv, err := server.New(server.Config{Store: store, S: sTree})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(server.NewHandler(srv, server.HandlerConfig{Shard: &keys}))
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Logf("closing shard: %v", err)
		}
		if err := pager.Close(); err != nil {
			t.Logf("closing pager: %v", err)
		}
	})
	return ts.URL
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(method, path, &buf))
	return w
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-shards", " http://a:1, http://b:2 ,", "-retries", "5"})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if len(cfg.shardURLs) != 2 || cfg.shardURLs[0] != "http://a:1" || cfg.shardURLs[1] != "http://b:2" {
		t.Fatalf("shardURLs = %v", cfg.shardURLs)
	}
	if cfg.retries != 5 {
		t.Fatalf("retries = %d, want 5", cfg.retries)
	}
	if _, err := parseFlags(nil); err == nil {
		t.Fatal("parseFlags accepted an empty shard list")
	}
}

// TestRouterEndToEnd drives the full path a deployment sees: key ranges
// discovered from the shards' /stats, updates routed by centre key, a
// round committed everywhere, and a join merged over both shards.  One S
// rectangle covering the world makes the oracle trivial: every routed op
// joins it, in ascending R order.
func TestRouterEndToEnd(t *testing.T) {
	sItems := []rtree.Item{{Rect: geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, Data: 0}}
	ranges := zorder.UniformKeyRanges(2)
	urls := []string{
		newShardDaemon(t, ranges[0], sItems),
		newShardDaemon(t, ranges[1], sItems),
	}

	cfg, err := parseFlags([]string{"-shards", strings.Join(urls, ","), "-retries", "2"})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := discoverShards(context.Background(), http.DefaultClient, cfg)
	if err != nil {
		t.Fatalf("discoverShards: %v", err)
	}
	for i, sh := range shards {
		if sh.Range != ranges[i] {
			t.Fatalf("discovered range %d = %v, want %v", i, sh.Range, ranges[i])
		}
	}
	rt, err := router.New(router.Config{Shards: shards, RetryAttempts: cfg.retries})
	if err != nil {
		t.Fatal(err)
	}
	h := newHandler(rt)

	ops := []server.OpWire{
		{XL: 0.10, YL: 0.10, XU: 0.12, YU: 0.12, Data: 1},
		{XL: 0.90, YL: 0.90, XU: 0.92, YU: 0.92, Data: 2},
		{XL: 0.10, YL: 0.90, XU: 0.12, YU: 0.92, Data: 3},
		{XL: 0.90, YL: 0.10, XU: 0.92, YU: 0.12, Data: 4},
	}
	if w := doJSON(t, h, "POST", "/update", ops); w.Code != http.StatusAccepted {
		t.Fatalf("update: %d %s", w.Code, w.Body)
	}
	if w := doJSON(t, h, "POST", "/round", nil); w.Code != http.StatusOK {
		t.Fatalf("round: %d %s", w.Code, w.Body)
	}
	w := doJSON(t, h, "POST", "/join", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("join: %d %s", w.Code, w.Body)
	}
	var resp joinResponseWire
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := [][2]int32{{1, 0}, {2, 0}, {3, 0}, {4, 0}}
	if resp.Count != len(want) || len(resp.Pairs) != len(want) {
		t.Fatalf("join count = %d (%d pairs), want %d", resp.Count, len(resp.Pairs), len(want))
	}
	for i := range want {
		if resp.Pairs[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, resp.Pairs[i], want[i])
		}
	}
	if len(resp.Shards) != 2 {
		t.Fatalf("join reported %d shard outcomes, want 2", len(resp.Shards))
	}

	if w := doJSON(t, h, "GET", "/stats", nil); w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body)
	}
}

// stubShardPair returns a healthy stub shard and a broken one, each
// advertising half of the key space, with the broken half answering /join
// as scripted.
func stubShardPair(t *testing.T, brokenJoin http.HandlerFunc) []router.Shard {
	t.Helper()
	ranges := zorder.UniformKeyRanges(2)
	mkStats := func(rng zorder.KeyRange) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"shard":%q}`, rng)
		}
	}
	healthy := http.NewServeMux()
	healthy.HandleFunc("GET /stats", mkStats(ranges[0]))
	healthy.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"epoch":1,"count":0}`)
	})
	broken := http.NewServeMux()
	broken.HandleFunc("GET /stats", mkStats(ranges[1]))
	broken.HandleFunc("POST /join", brokenJoin)

	hts := httptest.NewServer(healthy)
	bts := httptest.NewServer(broken)
	t.Cleanup(hts.Close)
	t.Cleanup(bts.Close)
	return []router.Shard{
		{Name: "healthy", URL: hts.URL, Range: ranges[0]},
		{Name: "broken", URL: bts.URL, Range: ranges[1]},
	}
}

// TestPartialFailureMapsTo502 pins the gateway contract: one shard failing
// after retries yields 502 naming the shard, never a 200 with half the
// pairs.
func TestPartialFailureMapsTo502(t *testing.T) {
	shards := stubShardPair(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"disk died"}`, http.StatusInternalServerError)
	})
	rt, err := router.New(router.Config{Shards: shards, RetryAttempts: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	w := doJSON(t, newHandler(rt), "POST", "/join", nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("join over half-dead deployment: %d, want 502", w.Code)
	}
	var body struct {
		Failed    []string `json:"failed"`
		Succeeded []string `json:"succeeded"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Failed) != 1 || body.Failed[0] != "broken" {
		t.Fatalf("failed = %v, want [broken]", body.Failed)
	}
	if len(body.Succeeded) != 1 || body.Succeeded[0] != "healthy" {
		t.Fatalf("succeeded = %v, want [healthy]", body.Succeeded)
	}
}

// TestAllShedMapsTo503 pins the overload path: when every failed shard was
// shedding, the router sheds too, forwarding the largest Retry-After as
// RFC 9110 integer seconds.
func TestAllShedMapsTo503(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, `{}`) })
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, `{"error":"shed"}`, http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	rt, err := router.New(router.Config{
		Shards:        []router.Shard{{Name: "s", URL: ts.URL, Range: zorder.KeyRange{Lo: 0, Hi: zorder.KeySpace}}},
		RetryAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := doJSON(t, newHandler(rt), "POST", "/join", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-shed join: %d, want 503", w.Code)
	}
	secs, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || secs < 3 {
		t.Fatalf("Retry-After = %q (err %v), want the forwarded 3s", w.Header().Get("Retry-After"), err)
	}
}

// syncBuffer lets the test read the daemon's log output while run() is
// still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunDrainsOnSignal boots the real run() against a live shard, waits
// until it serves, cancels the signal context (what SIGTERM does) and
// requires a clean, prompt exit.
func TestRunDrainsOnSignal(t *testing.T) {
	sItems := []rtree.Item{{Rect: geom.Rect{XL: 0, YL: 0, XU: 1, YU: 1}, Data: 0}}
	url := newShardDaemon(t, zorder.KeyRange{Lo: 0, Hi: zorder.KeySpace}, sItems)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-shards", url}, out)
	}()

	deadline := time.After(10 * time.Second)
	for !strings.Contains(out.String(), "routing on") {
		select {
		case err := <-done:
			t.Fatalf("run exited before serving: %v (log: %s)", err, out.String())
		case <-deadline:
			t.Fatalf("router never started serving (log: %s)", out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain within 10s of cancellation")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("drain not logged: %s", out.String())
	}
}
