// Command spatialjoinrouter fronts a deployment of Hilbert-range shards
// (spatialjoind processes started with -shard lo:hi) and serves the same
// HTTP surface a single daemon would: updates route to the shard owning
// the rectangle's centre key, joins fan out to every shard and merge into
// one deterministic, (R, S)-sorted pair set, and failures stay typed — a
// partial fan-out is an error, never a silently truncated result.
//
// The shard layout is learned, not configured: at startup the router polls
// each shard's GET /stats (with retries, so shards may still be booting)
// and reads the advertised key range.  The ranges must tile the Hilbert
// key space exactly or the router refuses to start.
//
// Usage:
//
//	spatialjoinrouter -addr :7460 -shards http://127.0.0.1:7461,http://127.0.0.1:7462
//
// Endpoints:
//
//	POST /update  JSON [{"xl":..,"yl":..,"xu":..,"yu":..,"data":1}, ...]
//	POST /round   commit staged mutations on every shard
//	POST /join    JSON {"workers":4,"discard_pairs":false} (body optional)
//	GET  /stats   per-shard server counters and coverage summaries
//
// Error mapping: a shard failing after retries yields 502 with the failed
// shard names; if every shard was shedding, the router sheds too (503 with
// the largest shard Retry-After); a deadline maps to 504.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/zorder"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spatialjoinrouter:", err)
		os.Exit(1)
	}
}

type routerFlags struct {
	addr          string
	shardURLs     []string
	statsTTL      time.Duration
	deadline      time.Duration
	retries       int
	backoff       time.Duration
	maxRetryAfter time.Duration
	discoverFor   time.Duration
}

func parseFlags(args []string) (routerFlags, error) {
	fs := flag.NewFlagSet("spatialjoinrouter", flag.ContinueOnError)
	var cfg routerFlags
	var shards string
	fs.StringVar(&cfg.addr, "addr", ":7460", "listen address")
	fs.StringVar(&shards, "shards", "", "comma-separated shard base URLs (ranges are learned from each shard's /stats)")
	fs.DurationVar(&cfg.statsTTL, "stats-ttl", 2*time.Second, "coverage summary cache TTL")
	fs.DurationVar(&cfg.deadline, "deadline", 30*time.Second, "per-attempt shard request timeout")
	fs.IntVar(&cfg.retries, "retries", 3, "attempts per shard request before the shard counts as failed")
	fs.DurationVar(&cfg.backoff, "backoff", 50*time.Millisecond, "first retry delay (doubles per attempt)")
	fs.DurationVar(&cfg.maxRetryAfter, "max-retry-after", 2*time.Second, "cap on a shedding shard's honoured Retry-After")
	fs.DurationVar(&cfg.discoverFor, "discover-timeout", 10*time.Second, "how long to keep polling shards for their key ranges at startup")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	for _, u := range strings.Split(shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			cfg.shardURLs = append(cfg.shardURLs, u)
		}
	}
	if len(cfg.shardURLs) == 0 {
		return cfg, errors.New("no -shards configured")
	}
	return cfg, nil
}

// discoverShards polls each shard's /stats until it advertises its key
// range (shards may still be starting), bounded by the discovery timeout.
// A shard advertising no range owns the whole key space — a single
// unsharded daemon behind the router is a valid one-shard deployment.
func discoverShards(ctx context.Context, client *http.Client, cfg routerFlags) ([]router.Shard, error) {
	ctx, cancel := context.WithTimeout(ctx, cfg.discoverFor)
	defer cancel()
	shards := make([]router.Shard, len(cfg.shardURLs))
	for i, url := range cfg.shardURLs {
		url = strings.TrimRight(url, "/")
		rng, err := pollShardRange(ctx, client, url)
		if err != nil {
			return nil, fmt.Errorf("discovering %s: %w", url, err)
		}
		shards[i] = router.Shard{Name: fmt.Sprintf("shard%d@%s", i, url), URL: url, Range: rng}
	}
	return shards, nil
}

func pollShardRange(ctx context.Context, client *http.Client, url string) (zorder.KeyRange, error) {
	var lastErr error
	for {
		rng, err := fetchShardRange(ctx, client, url)
		if err == nil {
			return rng, nil
		}
		lastErr = err
		t := time.NewTimer(200 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return zorder.KeyRange{}, fmt.Errorf("%w (last error: %v)", ctx.Err(), lastErr)
		case <-t.C:
		}
	}
}

func fetchShardRange(ctx context.Context, client *http.Client, url string) (zorder.KeyRange, error) {
	reqCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url+"/stats", nil)
	if err != nil {
		return zorder.KeyRange{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return zorder.KeyRange{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return zorder.KeyRange{}, fmt.Errorf("stats returned %d", resp.StatusCode)
	}
	var wire server.StatsWire
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return zorder.KeyRange{}, err
	}
	if wire.Shard == "" {
		return zorder.KeyRange{Lo: 0, Hi: zorder.KeySpace}, nil
	}
	return zorder.ParseKeyRange(wire.Shard)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger := log.New(out, "spatialjoinrouter: ", log.LstdFlags)
	client := &http.Client{}

	shards, err := discoverShards(ctx, client, cfg)
	if err != nil {
		return err
	}
	rt, err := router.New(router.Config{
		Shards:        shards,
		Client:        client,
		StatsTTL:      cfg.statsTTL,
		ShardTimeout:  cfg.deadline,
		RetryAttempts: cfg.retries,
		RetryBackoff:  cfg.backoff,
		MaxRetryAfter: cfg.maxRetryAfter,
	})
	if err != nil {
		return err
	}
	for _, sh := range rt.Shards() {
		logger.Printf("shard %s owns %s", sh.URL, sh.Range)
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: newHandler(rt)}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Printf("routing on %s over %d shards", ln.Addr(), len(shards))

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
	case err := <-errCh:
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
		return err
	}
	return nil
}

// joinResponseWire is the router's POST /join response: the merged pair
// set plus the per-shard outcomes a client needs to reason about tail
// latency and retries.
type joinResponseWire struct {
	Count  int                   `json:"count"`
	Pairs  [][2]int32            `json:"pairs,omitempty"`
	Shards []router.ShardOutcome `json:"shards"`
}

func newHandler(rt *router.Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var ops []server.OpWire
		if err := json.NewDecoder(r.Body).Decode(&ops); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		staged, err := rt.Update(r.Context(), ops)
		if err != nil {
			writeRouterError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]int{"staged": staged})
	})
	mux.HandleFunc("POST /round", func(w http.ResponseWriter, r *http.Request) {
		if err := rt.Round(r.Context()); err != nil {
			writeRouterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		var req server.JoinRequestWire
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
		}
		res, err := rt.Join(r.Context(), router.JoinRequest{
			Method:       req.Method,
			Workers:      req.Workers,
			Predicate:    req.Predicate,
			DiscardPairs: req.DiscardPairs,
		})
		if err != nil {
			writeRouterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, joinResponseWire{Count: res.Count, Pairs: res.Pairs, Shards: res.Shards})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		stats, err := rt.Stats(r.Context())
		if err != nil {
			writeRouterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, stats)
	})
	return mux
}

// writeRouterError maps the router's typed errors onto gateway semantics:
// every shard shedding means the deployment is overloaded, so the router
// sheds too (503 with the largest shard Retry-After); any other partial
// fan-out is a 502 naming the failed shards; a deadline is a 504.
func writeRouterError(w http.ResponseWriter, err error) {
	var perr *router.PartialError
	switch {
	case errors.As(err, &perr):
		if after, allShed := allShedding(perr); allShed {
			secs := int(after / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error": "all shards shedding", "failed": shardNames(perr),
			})
			return
		}
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":     err.Error(),
			"failed":    shardNames(perr),
			"succeeded": perr.Succeeded,
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// allShedding reports whether every failed shard's terminal error was a
// 503 shed, and the largest Retry-After any of them asked for.
func allShedding(perr *router.PartialError) (time.Duration, bool) {
	var after time.Duration
	for _, f := range perr.Failures {
		var se *router.StatusError
		if !errors.As(f, &se) || se.Code != http.StatusServiceUnavailable {
			return 0, false
		}
		if se.RetryAfter > after {
			after = se.RetryAfter
		}
	}
	return after, len(perr.Failures) > 0
}

func shardNames(perr *router.PartialError) []string {
	names := make([]string, len(perr.Failures))
	for i, f := range perr.Failures {
		names[i] = f.Shard
	}
	return names
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
