// Command datagen generates the synthetic spatial relations that substitute
// for the paper's TIGER/Line and region data sets and writes them as CSV
// files (id,xl,yl,xu,yu) for use with cmd/spatialjoin.
//
// Usage:
//
//	datagen -kind streets -count 131461 -seed 101 -out streets.csv
//	datagen -paper A -scale 0.1 -out-r streets.csv -out-s rivers.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		kind  = fs.String("kind", "streets", "dataset kind: streets, rivers or regions")
		count = fs.Int("count", 10000, "number of spatial objects")
		seed  = fs.Int64("seed", 1, "random seed")
		out   = fs.String("out", "", "output CSV file (single relation)")
		paper = fs.String("paper", "", "generate one of the paper's test pairs A-E instead of a single relation")
		scale = fs.Float64("scale", 1.0, "scale factor for the paper pair cardinalities")
		outR  = fs.String("out-r", "r.csv", "output file for relation R of a paper pair")
		outS  = fs.String("out-s", "s.csv", "output file for relation S of a paper pair")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *paper != "" {
		return generatePaperPair(*paper, *scale, *outR, *outS)
	}
	if *out == "" {
		return fmt.Errorf("either -out or -paper must be given")
	}
	k, err := parseKind(*kind)
	if err != nil {
		return err
	}
	items := repro.GenerateDataset(repro.DatasetConfig{Kind: k, Count: *count, Seed: *seed})
	if err := repro.WriteDataset(*out, items); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s objects to %s\n", len(items), *kind, *out)
	return nil
}

func parseKind(s string) (repro.DatasetKind, error) {
	switch s {
	case "streets":
		return repro.Streets, nil
	case "rivers":
		return repro.Rivers, nil
	case "regions":
		return repro.Regions, nil
	default:
		return repro.Streets, fmt.Errorf("unknown kind %q (want streets, rivers or regions)", s)
	}
}

// paperPairs mirrors Table 8 of the paper.
var paperPairs = map[string]struct {
	rKind, sKind   repro.DatasetKind
	rCount, sCount int
	rSeed, sSeed   int64
}{
	"A": {repro.Streets, repro.Rivers, 131461, 128971, 101, 202},
	"B": {repro.Streets, repro.Streets, 131461, 131192, 101, 303},
	"C": {repro.Streets, repro.Rivers, 598677, 128971, 404, 202},
	"D": {repro.Rivers, repro.Rivers, 128971, 128971, 202, 202},
	"E": {repro.Regions, repro.Regions, 67527, 33696, 505, 606},
}

func generatePaperPair(name string, scale float64, outR, outS string) error {
	p, ok := paperPairs[name]
	if !ok {
		return fmt.Errorf("unknown paper test %q (want A-E)", name)
	}
	if scale <= 0 {
		scale = 1
	}
	scaled := func(n int) int {
		v := int(float64(n) * scale)
		if v < 100 {
			v = 100
		}
		return v
	}
	r := repro.GenerateDataset(repro.DatasetConfig{Kind: p.rKind, Count: scaled(p.rCount), Seed: p.rSeed})
	s := repro.GenerateDataset(repro.DatasetConfig{Kind: p.sKind, Count: scaled(p.sCount), Seed: p.sSeed})
	if err := repro.WriteDataset(outR, r); err != nil {
		return err
	}
	if err := repro.WriteDataset(outS, s); err != nil {
		return err
	}
	fmt.Printf("test (%s): wrote %d objects to %s and %d objects to %s\n", name, len(r), outR, len(s), outS)
	return nil
}
