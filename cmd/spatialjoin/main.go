// Command spatialjoin builds R*-trees over two spatial relations (read from
// CSV files or generated on the fly) and computes their spatial join with one
// of the paper's algorithms, reporting the result size, the counted costs
// (comparisons, disk accesses, buffer hits) and the estimated execution time
// under the paper's cost model.
//
// Usage:
//
//	spatialjoin -r streets.csv -s rivers.csv -method SJ4 -page 4096 -buffer 128
//	spatialjoin -generate -count 20000 -method SJ1,SJ4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spatialjoin:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spatialjoin", flag.ContinueOnError)
	var (
		rPath    = fs.String("r", "", "CSV file of relation R (id,xl,yl,xu,yu)")
		sPath    = fs.String("s", "", "CSV file of relation S")
		generate = fs.Bool("generate", false, "generate synthetic street/river relations instead of reading files")
		count    = fs.Int("count", 20000, "objects per generated relation")
		seed     = fs.Int64("seed", 1, "seed for generated relations")
		methods  = fs.String("method", "SJ4", "comma-separated join methods: NL, SJ1, SJ2, SJ3, SJ4, SJ5")
		pageSize = fs.Int("page", repro.PageSize4K, "page size in bytes (1024, 2048, 4096 or 8192)")
		bufferKB = fs.Int("buffer", 128, "LRU buffer size in KByte")
		policy   = fs.String("policy", "b", "height policy for trees of different heights: a, b or c")
		bulk     = fs.Bool("bulk", false, "build the trees with STR bulk loading instead of insertion")
		pairsOut = fs.String("pairs", "", "optional file to write the result pairs to")
		predFlag = fs.String("predicate", "intersects", "join predicate: intersects, within:EPS or knn:K")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	itemsR, itemsS, err := loadRelations(*rPath, *sPath, *generate, *count, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "relation R: %d objects, relation S: %d objects\n", len(itemsR), len(itemsS))

	treeR, err := repro.BuildRTree(repro.RTreeOptions{PageSize: *pageSize}, itemsR, *bulk)
	if err != nil {
		return err
	}
	treeS, err := repro.BuildRTree(repro.RTreeOptions{PageSize: *pageSize}, itemsS, *bulk)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "R*-tree R: %v\nR*-tree S: %v\n", treeR, treeS)

	heightPolicy, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	pred, err := repro.ParseJoinPredicate(*predFlag)
	if err != nil {
		return err
	}
	model := repro.DefaultCostModel()
	for _, name := range strings.Split(*methods, ",") {
		method, err := parseMethod(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		res, err := repro.TreeJoin(treeR, treeS, repro.JoinOptions{
			Method:        method,
			BufferBytes:   *bufferKB << 10,
			UsePathBuffer: true,
			HeightPolicy:  heightPolicy,
			Predicate:     pred,
			DiscardPairs:  *pairsOut == "",
		})
		if err != nil {
			return err
		}
		est := model.Estimate(res.Metrics.DiskAccesses(), *pageSize, res.Metrics.TotalComparisons())
		fmt.Fprintf(out, "\n%v %v (page %d B, buffer %d KB)\n", method, pred, *pageSize, *bufferKB)
		fmt.Fprintf(out, "  result pairs:     %d\n", res.Count)
		fmt.Fprintf(out, "  comparisons:      %d join + %d sorting\n", res.Metrics.Comparisons, res.Metrics.SortComparisons)
		fmt.Fprintf(out, "  disk accesses:    %d (buffer hits %d, path hits %d)\n",
			res.Metrics.DiskAccesses(), res.Metrics.BufferHits, res.Metrics.PathHits)
		fmt.Fprintf(out, "  estimated time:   %.1f s total (%.1f s I/O, %.1f s CPU)\n",
			est.TotalSeconds(), est.IOSeconds, est.CPUSeconds)

		if *pairsOut != "" {
			if err := writePairs(*pairsOut, res); err != nil {
				return err
			}
			fmt.Fprintf(out, "  pairs written to: %s\n", *pairsOut)
		}
	}
	return nil
}

func loadRelations(rPath, sPath string, generate bool, count int, seed int64) ([]repro.Item, []repro.Item, error) {
	if generate {
		r := repro.GenerateDataset(repro.DatasetConfig{Kind: repro.Streets, Count: count, Seed: seed})
		s := repro.GenerateDataset(repro.DatasetConfig{Kind: repro.Rivers, Count: count, Seed: seed + 1})
		return r, s, nil
	}
	if rPath == "" || sPath == "" {
		return nil, nil, fmt.Errorf("either -generate or both -r and -s must be given")
	}
	r, err := repro.ReadDataset(rPath)
	if err != nil {
		return nil, nil, err
	}
	s, err := repro.ReadDataset(sPath)
	if err != nil {
		return nil, nil, err
	}
	return r, s, nil
}

func parseMethod(s string) (repro.JoinMethod, error) {
	switch strings.ToUpper(s) {
	case "NL", "NESTEDLOOP":
		return repro.NestedLoopJoin, nil
	case "SJ1":
		return repro.SpatialJoin1, nil
	case "SJ2":
		return repro.SpatialJoin2, nil
	case "SJ3":
		return repro.SpatialJoin3, nil
	case "SJ4":
		return repro.SpatialJoin4, nil
	case "SJ5":
		return repro.SpatialJoin5, nil
	default:
		return repro.SpatialJoin4, fmt.Errorf("unknown method %q", s)
	}
}

func parsePolicy(s string) (repro.HeightPolicy, error) {
	switch strings.ToLower(s) {
	case "a":
		return repro.WindowPerPair, nil
	case "b":
		return repro.BatchedWindows, nil
	case "c":
		return repro.SweepOrder, nil
	default:
		return repro.BatchedWindows, fmt.Errorf("unknown height policy %q (want a, b or c)", s)
	}
}

func writePairs(path string, res *repro.JoinResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, p := range res.Pairs {
		if _, err := fmt.Fprintf(f, "%d,%d\n", p.R, p.S); err != nil {
			return err
		}
	}
	return f.Close()
}
