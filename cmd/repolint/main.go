// Command repolint is the repo's single lint entrypoint: a multichecker
// driving the custom analyzers that enforce the reproduction's cross-cutting
// contracts (determinism of the measured packages, counted-I/O accounting,
// pin/unpin and latched-error lifecycle, allocation-free hot paths) together
// with self-contained reimplementations of the staticcheck-class standard
// passes (nilness, unusedresult, copylocks, sortslice).
//
// Usage:
//
//	go run ./cmd/repolint ./...          # lint every package
//	go run ./cmd/repolint ./internal/join ./internal/rtree
//	go run ./cmd/repolint -list          # list analyzers
//
// Suppress a documented false positive at the site with
//
//	//repolint:ignore <analyzer> <reason>
//
// on the diagnostic's line or the line above; the reason is mandatory.
// See DESIGN.md "Statically enforced invariants" for the analyzer contracts
// and the annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [-list] <package patterns>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	n, err := run(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// run lints the packages matched by patterns (resolved against the current
// module) and returns the number of findings printed.
func run(patterns []string) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		return 0, err
	}
	paths, err := l.ExpandPatterns(patterns)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			return findings, err
		}
		diags, err := analysis.Run(p, analysis.All)
		if err != nil {
			return findings, err
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	return findings, nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
