package main

import "testing"

// TestRepoLintsClean pins the tree-wide contract CI enforces: the full
// repository, with its annotations and documented suppressions, produces
// zero findings.  A new true positive anywhere fails this test before it
// fails the CI lint job.
func TestRepoLintsClean(t *testing.T) {
	n, err := run([]string{"./..."})
	if err != nil {
		t.Fatalf("repolint ./...: %v", err)
	}
	if n != 0 {
		t.Fatalf("repolint ./... reported %d finding(s); the tree must lint clean", n)
	}
}

// TestDeliberateViolationFails is the acceptance check for the accounting
// contract: a join-shaped package that reads pages raw from the pager
// (testdata/src/joinviolation, excluded from ./... and linted explicitly
// here) must fail the run.
func TestDeliberateViolationFails(t *testing.T) {
	n, err := run([]string{"./internal/analysis/testdata/src/joinviolation"})
	if err != nil {
		t.Fatalf("repolint joinviolation: %v", err)
	}
	if n == 0 {
		t.Fatal("a raw Pager read in a join path produced no findings; the accounting analyzer is not protecting the measured I/O")
	}
}
